open Kernel
module Repo = Gkbms.Repository
module Wal = Durability.Wal
module J = Tms.Jtms

let ( let* ) = Result.bind

let g_records =
  Obs.Registry.counter Obs.Registry.default "gkbms_repl_records_applied_total"
    ~help:"WAL records applied from the replication stream"

let g_decisions =
  Obs.Registry.counter Obs.Registry.default "gkbms_repl_decisions_applied_total"
    ~help:"Decision frames applied from the replication stream"

let g_visibility_lag =
  Obs.Registry.histogram Obs.Registry.default
    "gkbms_repl_visibility_lag_seconds"
    ~help:
      "Per-decision replication visibility lag: follower apply wall-clock \
       minus the leader's commit wall-clock, from the trace note in the \
       shipped frame"

(* Buffered decision frames.  The leader's WAL brackets every decision
   with begin/commit records (nested decisions nest their frames); the
   applier buffers records until the OUTERMOST commit arrives and only
   then touches the repository — so a follower killed mid-batch never
   exposes (or journals) half a decision: its own WAL either holds the
   whole replayed frame or a dangling one that its recovery rolls
   back. *)
type item = Rec of Wal.record | Sub of string * frame
and frame = { cls : string; mutable items : item list (* newest first *) }

type t = {
  repo : Repo.t;
  mutable stack : frame list;  (** open frames, innermost first *)
  mutable records_fed : int;
  mutable decisions_applied : int;
}

let create repo = { repo; stack = []; records_fed = 0; decisions_applied = 0 }
let depth t = List.length t.stack
let records_fed t = t.records_fed
let decisions_applied t = t.decisions_applied

(* dropped buffered frames: a generation boundary (or resync) starts
   from a clean frame edge, so open frames from a torn archive tail
   must not leak across *)
let reset t = t.stack <- []

let framed_size r = 8 + String.length (Wal.encode r)

let already_logged repo id =
  List.exists (Symbol.equal id) (Repo.decision_log repo)

let apply_put repo (p : Prop.t) =
  let base = Cml.Kb.base (Repo.kb repo) in
  match Store.Base.find base p.Prop.id with
  | Some existing when Prop.equal existing p -> Ok ()
  | Some _ ->
    let* _removed = Store.Base.remove base p.Prop.id in
    Store.Base.insert base p
  | None -> Store.Base.insert base p

let apply_tomb repo id =
  let base = Cml.Kb.base (Repo.kb repo) in
  if Store.Base.mem base id then
    let* _removed = Store.Base.remove base id in
    Ok ()
  else Ok ()

let apply_unlog repo dec =
  (* mirror of Backtrack.retract's reason-maintenance teardown *)
  let justs = Repo.justifications_of repo dec in
  J.retract_batch (Repo.jtms repo) justs;
  Repo.forget_justifications repo dec;
  Repo.unlog_decision repo dec;
  Ok ()

let apply_plain t r =
  let repo = t.repo in
  let* () =
    match r with
    | Wal.Put p -> apply_put repo p
    | Wal.Tomb id -> apply_tomb repo id
    | Wal.Artifact (name, text) ->
      let* a = Result.bind (Sexp.parse text) Gkbms.Persist.artifact_of_sexp in
      Repo.set_artifact repo (Symbol.intern name) a;
      Ok ()
    | Wal.Note ("unlog", name) -> apply_unlog repo (Symbol.intern name)
    | Wal.Note (key, v) when key = Wire.trace_note_key ->
      (* the leader stamped this decision's commit wall-clock: now minus
         then is exactly how long the decision took to become visible
         here.  Clock skew can make the difference negative on real
         hosts; clamp rather than poison the histogram. *)
      (match Wire.parse_trace_note v with
      | Ok (decision, ctx, commit_s) ->
        let lag = Float.max 0. (Obs.Runtime.now_s () -. commit_s) in
        Obs.Histogram.observe g_visibility_lag lag;
        Obs.Recorder.record
          ?trace:(Option.map Obs.Trace_context.trace_hex ctx)
          ~decision (Obs.Recorder.Applied lag)
      | Error _ -> ());
      Ok ()
    | Wal.Note _ -> Ok ()
    | Wal.Decision_begin _ | Wal.Decision_commit _ | Wal.Decision_abort _ ->
      Ok ()
  in
  Obs.Registry.Counter.inc g_records;
  Ok ()

let commit_decision t id =
  Repo.log_decision t.repo id;
  (* install this decision's reason-maintenance mirror incrementally:
     its KB records were just applied, and Jtms.justify does not
     deduplicate, so a whole-log rebuild here would pile up copies *)
  Gkbms.Decision.install_rebuilt_justifications t.repo id;
  Repo.emit_event t.repo (Repo.Decision_committed id);
  t.decisions_applied <- t.decisions_applied + 1;
  Obs.Registry.Counter.inc g_decisions

let rec apply_items t items =
  List.fold_left
    (fun acc item ->
      let* () = acc in
      match item with
      | Rec r -> apply_plain t r
      | Sub (name, f) -> apply_subframe t name f)
    (Ok ()) items

and apply_subframe t name f =
  (* replay the nested decision with its own begin/commit events so the
     follower's journal nests exactly like the leader's *)
  Repo.emit_event t.repo (Repo.Decision_begun f.cls);
  let* () = apply_items t (List.rev f.items) in
  commit_decision t (Symbol.intern name);
  Ok ()

(* the frame's trace note, if the leader shipped one (items are newest
   first, and the note is appended right before the commit record, so
   it sits near the head) *)
let frame_trace_ctx f =
  List.find_map
    (function
      | Rec (Wal.Note (key, v)) when key = Wire.trace_note_key -> (
        match Wire.parse_trace_note v with
        | Ok (_, ctx, _) -> ctx
        | Error _ -> None)
      | _ -> None)
    f.items

let apply_outer_frame t name f =
  let id = Symbol.intern name in
  if already_logged t.repo id then
    (* overlap replay after a crash left the persisted cursor behind the
       applied state: the whole frame is already in — skip it without
       journaling anything (an empty dangling frame in our own WAL
       would wedge every later record behind a begin that never
       commits) *)
    Ok ()
  else
    (* continue the originating trace: spans opened while this frame
       applies (including the follower's own wal.append) carry the
       leader-side trace id *)
    Obs.Trace.with_context (frame_trace_ctx f) @@ fun () ->
    Obs.Trace.with_span "follower.apply" ~attrs:[ ("decision", name) ]
    @@ fun () ->
    Repo.emit_event t.repo (Repo.Decision_begun f.cls);
    let* () = apply_items t (List.rev f.items) in
    commit_decision t id;
    Ok ()

let feed t r =
  t.records_fed <- t.records_fed + 1;
  match r with
  | Wal.Decision_begin cls ->
    t.stack <- { cls; items = [] } :: t.stack;
    Ok ()
  | Wal.Decision_abort _ -> (
    match t.stack with
    | _aborted :: rest ->
      t.stack <- rest;
      Ok ()
    | [] -> Ok ())
  | Wal.Decision_commit name -> (
    match t.stack with
    | f :: parent :: rest ->
      parent.items <- Sub (name, f) :: parent.items;
      t.stack <- parent :: rest;
      Ok ()
    | [ f ] ->
      t.stack <- [];
      apply_outer_frame t name f
    | [] ->
      (* a commit marker with no open frame: tolerated for streams that
         start mid-history (the guarded log keeps it idempotent) *)
      let id = Symbol.intern name in
      if already_logged t.repo id then Ok ()
      else begin
        commit_decision t id;
        Ok ()
      end)
  | r -> (
    match t.stack with
    | f :: _ ->
      f.items <- Rec r :: f.items;
      Ok ()
    | [] -> apply_plain t r)

let feed_all t records =
  List.fold_left
    (fun acc r ->
      let* () = acc in
      feed t r)
    (Ok ()) records
