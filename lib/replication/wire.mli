(** Request/response codecs for the replication command family.

    Requests are plain protocol lines ([repl hello], [repl token],
    [repl snapshot FROM], [repl frames GEN OFFSET MAX WAITMS],
    [repl ack NAME GEN OFFSET EPOCH VERSION], [wait EPOCH VERSION MS]);
    responses are a space-separated integer header, then — for
    snapshot/frames — a newline and a raw binary chunk (the framed
    protocol is binary-safe, so no escaping). *)

val protocol_version : int

(** {1 Requests} *)

val hello : string
val token : string
val snapshot : from:int -> string
val frames : gen:int -> offset:int -> max_bytes:int -> wait_ms:int -> string

val ack :
  name:string -> gen:int -> offset:int -> epoch:int -> version:int -> string

val wait : epoch:int -> version:int -> timeout_ms:int -> string

(** {1 Responses} *)

type hello_resp = { h_generation : int; h_version : int }
type token_resp = { t_epoch : int; t_version : int }

type snapshot_resp = {
  s_generation : int;  (** generation the checkpoint precedes *)
  s_offset : int;  (** first frame offset in that generation *)
  s_total : int;  (** checkpoint size in bytes *)
  s_chunk : string;
}

type frames_resp = {
  f_next_gen : int;
  f_next_offset : int;
  f_caught_up : bool;
      (** the chunk (possibly empty) ends at the leader's synced head *)
  f_epoch : int;  (** leader generation at capture time *)
  f_version : int;  (** leader repository version at capture time *)
  f_chunk : string;
}

val format_hello : generation:int -> version:int -> string
val parse_hello : string -> (hello_resp, string) result
val format_token : epoch:int -> version:int -> string
val parse_token : string -> (token_resp, string) result

val format_snapshot :
  generation:int -> offset:int -> total:int -> chunk:string -> string

val parse_snapshot : string -> (snapshot_resp, string) result

val format_frames :
  next_gen:int -> next_offset:int -> caught_up:bool -> epoch:int ->
  version:int -> chunk:string -> string

val parse_frames : string -> (frames_resp, string) result

(** {1 Session tokens}

    A client that commits on the leader carries an "EPOCH:VERSION"
    token ([repl token] / [gkbms client --min-version]); followers
    block on it ([wait]) before answering, which is the read-your-writes
    guarantee. *)

val format_session_token : epoch:int -> version:int -> string
val parse_session_token : string -> (int * int, string) result

val token_le : int * int -> int * int -> bool
(** Lexicographic order: epochs (leader WAL generations) grow strictly
    across leader restarts, so tokens stay comparable even though the
    version counter resets on recovery. *)

val is_resync_error : string -> bool
(** True when a leader error payload demands a follower re-bootstrap
    (its cursor points at a pruned archive or past the log head). *)

(** {1 Trace notes}

    One [Wal.Note (trace_note_key, ...)] rides inside every committed
    decision frame the leader ships: decision id, optional encoded
    {!Obs.Trace_context}, and the leader's commit wall-clock.  Old
    peers (frames without the note) parse fine — the note is just
    another WAL record recovery ignores. *)

val trace_note_key : string

val format_trace_note :
  decision:string -> ctx:Obs.Trace_context.t option -> commit_s:float -> string

val parse_trace_note :
  string -> (string * Obs.Trace_context.t option * float, string) result
