module Daemon = Server.Daemon
module Scheduler = Server.Scheduler
module Protocol = Server.Protocol
module Repo = Gkbms.Repository
module Durable = Gkbms.Durable

let g_frames_shipped =
  Obs.Registry.counter Obs.Registry.default "gkbms_repl_frames_shipped_total"
    ~help:"WAL frame chunks shipped to followers"

let g_bytes_shipped =
  Obs.Registry.counter Obs.Registry.default "gkbms_repl_bytes_shipped_total"
    ~help:"WAL bytes shipped to followers"

let g_snapshots =
  Obs.Registry.counter Obs.Registry.default "gkbms_repl_snapshots_total"
    ~help:"Snapshot (checkpoint) transfers started by follower bootstraps"

type ack = {
  mutable k_gen : int;
  mutable k_offset : int;
  mutable k_epoch : int;
  mutable k_version : int;
}

type t = {
  daemon : Daemon.t;
  durable : Durable.t;
  repo : Repo.t;
  chunk_limit : int;
  m : Mutex.t;  (** follower ack table *)
  followers : (string, ack) Hashtbl.t;
}

(* leave generous headroom under the protocol frame bound for the
   response header *)
let max_chunk = Protocol.max_frame - 4096

(* One consistent capture: under the scheduler read lock no decision is
   mid-commit, so the journal is at frame depth 0 and (ship result,
   generation, version) describe the same leader state — the invariant
   behind the (epoch, version) session token. *)
let capture t ~gen ~offset ~max_bytes =
  Scheduler.read (Daemon.scheduler t.daemon) (fun () ->
      let shipped = Durable.ship t.durable ~gen ~offset ~max_bytes in
      let epoch = Durable.generation t.durable in
      let version = Repo.version t.repo in
      (shipped, epoch, version))

let resync_error =
  "error: resync: cursor unservable (archive pruned or past the log head); \
   re-bootstrap from a snapshot"

let handle_frames t ~gen ~offset ~max_bytes ~wait_ms =
  let max_bytes = max 1 (min max_bytes max_chunk) in
  let deadline = Unix.gettimeofday () +. (float_of_int wait_ms /. 1e3) in
  let rec go () =
    match capture t ~gen ~offset ~max_bytes with
    | Error `Resync, _, _ -> resync_error
    | Error (`Failure e), _, _ -> "error: " ^ e
    | Ok s, epoch, version ->
      if
        s.Durable.chunk = "" && s.Durable.at_head
        && Unix.gettimeofday () < deadline
      then begin
        (* long poll: nothing new yet; re-capture shortly *)
        Thread.delay 0.01;
        go ()
      end
      else if s.Durable.chunk <> "" then begin
        Obs.Registry.Counter.inc g_frames_shipped;
        Obs.Registry.Counter.inc g_bytes_shipped
          ~by:(String.length s.Durable.chunk);
        Obs.Trace.with_span "repl.ship"
          ~attrs:
            [
              ("gen", string_of_int gen);
              ("bytes", string_of_int (String.length s.Durable.chunk));
            ]
          (fun () ->
            Wire.format_frames ~next_gen:s.Durable.next_gen
              ~next_offset:s.Durable.next_offset ~caught_up:s.Durable.at_head
              ~epoch ~version ~chunk:s.Durable.chunk)
      end
      else
        Wire.format_frames ~next_gen:s.Durable.next_gen
          ~next_offset:s.Durable.next_offset ~caught_up:s.Durable.at_head
          ~epoch ~version ~chunk:s.Durable.chunk
  in
  go ()

let read_file path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let data = really_input_string ic len in
    close_in ic;
    Ok data
  with Sys_error e -> Error e

let handle_snapshot t ~from =
  (* under the read lock the checkpoint file cannot rotate underneath
     us, and it always describes the state at the current generation's
     first frame (both attach and checkpoint write it immediately
     before opening the generation's log) *)
  Scheduler.read (Daemon.scheduler t.daemon) (fun () ->
      match read_file (Durable.checkpoint_path (Durable.dir t.durable)) with
      | Error e -> "error: cannot read checkpoint: " ^ e
      | Ok data ->
        let total = String.length data in
        if from < 0 || from > total then
          Printf.sprintf "error: snapshot offset %d out of range (total %d)"
            from total
        else begin
          if from = 0 then Obs.Registry.Counter.inc g_snapshots;
          let stop = min total (from + t.chunk_limit) in
          Wire.format_snapshot
            ~generation:(Durable.generation t.durable)
            ~offset:Durability.Wal.header_bytes ~total
            ~chunk:(String.sub data from (stop - from))
        end)

let handle_ack t ~name ~gen ~offset ~epoch ~version =
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.followers name with
  | Some a ->
    a.k_gen <- gen;
    a.k_offset <- offset;
    a.k_epoch <- epoch;
    a.k_version <- version
  | None ->
    Hashtbl.replace t.followers name
      { k_gen = gen; k_offset = offset; k_epoch = epoch; k_version = version });
  Mutex.unlock t.m;
  (* leader-side lag gauges, per follower *)
  let cur_gen = Durable.generation t.durable in
  let lag_bytes =
    if gen = cur_gen then max 0 (Durable.wal_bytes t.durable - offset)
    else Durable.wal_bytes t.durable
  in
  let lag_versions =
    if epoch = cur_gen then max 0 (Repo.version t.repo - version)
    else Repo.version t.repo
  in
  Obs.Registry.Gauge.set
    (Obs.Registry.gauge Obs.Registry.default "gkbms_repl_follower_lag_bytes"
       ~labels:[ ("follower", name) ]
       ~help:"Bytes of WAL the follower has not acknowledged")
    (float_of_int lag_bytes);
  Obs.Registry.Gauge.set
    (Obs.Registry.gauge Obs.Registry.default "gkbms_repl_follower_lag_versions"
       ~labels:[ ("follower", name) ]
       ~help:"Leader versions ahead of the follower's acknowledged token")
    (float_of_int lag_versions);
  "ok"

let handle_status t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "leader gen %d offset %d version %d\n"
       (Durable.generation t.durable)
       (Durable.wal_bytes t.durable)
       (Repo.version t.repo));
  Mutex.lock t.m;
  let rows =
    Hashtbl.fold
      (fun name a acc ->
        Printf.sprintf "follower %s gen %d offset %d epoch %d version %d" name
          a.k_gen a.k_offset a.k_epoch a.k_version
        :: acc)
      t.followers []
  in
  Mutex.unlock t.m;
  List.iter
    (fun r ->
      Buffer.add_string b r;
      Buffer.add_char b '\n')
    (List.sort String.compare rows);
  String.trim (Buffer.contents b)

let handle_wait t ~epoch ~version ~timeout_ms =
  let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1e3) in
  let current () = (Durable.generation t.durable, Repo.version t.repo) in
  let rec go () =
    let e, v = current () in
    if Wire.token_le (epoch, version) (e, v) then Wire.format_token ~epoch:e ~version:v
    else if Unix.gettimeofday () >= deadline then
      Printf.sprintf "error: wait: leader at %d:%d, needed %d:%d (timeout)" e v
        epoch version
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let default_wait_ms = 5_000
let max_wait_ms = 60_000

let words line =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line))

let int_arg s = int_of_string_opt s

let handle t line =
  match words line with
  | [ "repl"; "hello" ] ->
    Some
      (Scheduler.read (Daemon.scheduler t.daemon) (fun () ->
           Wire.format_hello
             ~generation:(Durable.generation t.durable)
             ~version:(Repo.version t.repo)))
  | [ "repl"; "token" ] ->
    Some
      (Scheduler.read (Daemon.scheduler t.daemon) (fun () ->
           Wire.format_token
             ~epoch:(Durable.generation t.durable)
             ~version:(Repo.version t.repo)))
  | [ "repl"; "snapshot"; from ] -> (
    match int_arg from with
    | Some from -> Some (handle_snapshot t ~from)
    | None -> Some "error: usage: repl snapshot FROM")
  | [ "repl"; "frames"; gen; offset; max_bytes; wait_ms ] -> (
    match (int_arg gen, int_arg offset, int_arg max_bytes, int_arg wait_ms) with
    | Some gen, Some offset, Some max_bytes, Some wait_ms ->
      let wait_ms = max 0 (min wait_ms max_wait_ms) in
      Some (handle_frames t ~gen ~offset ~max_bytes ~wait_ms)
    | _ -> Some "error: usage: repl frames GEN OFFSET MAX_BYTES WAIT_MS")
  | [ "repl"; "ack"; name; gen; offset; epoch; version ] -> (
    match (int_arg gen, int_arg offset, int_arg epoch, int_arg version) with
    | Some gen, Some offset, Some epoch, Some version ->
      Some (handle_ack t ~name ~gen ~offset ~epoch ~version)
    | _ -> Some "error: usage: repl ack NAME GEN OFFSET EPOCH VERSION")
  | [ "repl"; "status" ] -> Some (handle_status t)
  | "repl" :: _ ->
    Some
      "error: unknown repl command (hello|token|snapshot|frames|ack|status)"
  | [ "wait"; epoch; version ] | [ "wait"; epoch; version; _ ] -> (
    let timeout_ms =
      match words line with
      | [ _; _; _; ms ] -> Option.value (int_arg ms) ~default:default_wait_ms
      | _ -> default_wait_ms
    in
    match (int_arg epoch, int_arg version) with
    | Some epoch, Some version ->
      let timeout_ms = max 0 (min timeout_ms max_wait_ms) in
      Some (handle_wait t ~epoch ~version ~timeout_ms)
    | _ -> Some "error: usage: wait EPOCH VERSION [TIMEOUT_MS]")
  | _ -> None

let attach ?(chunk_limit = 1 lsl 20) daemon =
  match Daemon.durable daemon with
  | None ->
    Error
      "replication leader requires an attached WAL (start the server with \
       --wal DIR)"
  | Some durable ->
    let t =
      {
        daemon;
        durable;
        repo = Daemon.repo daemon;
        chunk_limit = max 4096 (min chunk_limit max_chunk);
        m = Mutex.create ();
        followers = Hashtbl.create 8;
      }
    in
    Daemon.set_extension daemon (handle t);
    Ok t

let followers t =
  Mutex.lock t.m;
  let rows =
    Hashtbl.fold
      (fun name a acc -> (name, (a.k_gen, a.k_offset, a.k_epoch, a.k_version)) :: acc)
      t.followers []
  in
  Mutex.unlock t.m;
  List.sort compare rows
