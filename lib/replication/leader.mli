(** Leader side of WAL-shipping replication.

    [attach daemon] installs a {!Server.Daemon} extension that answers
    the [repl] command family on the daemon's ordinary connections:

    - [repl hello] — banner with protocol version, generation, version;
    - [repl token] — the leader's current (epoch, version) session token;
    - [repl snapshot FROM] — a chunk of the current checkpoint file, for
      follower bootstrap (the header names the generation whose first
      frame follows the checkpointed state);
    - [repl frames GEN OFFSET MAX WAITMS] — a chunk of committed WAL
      frames at the follower's cursor, long-polling up to WAITMS when
      already at the head; an unservable cursor (pruned archive, offset
      past the head) gets a [resync] error telling the follower to
      re-bootstrap;
    - [repl ack NAME GEN OFFSET EPOCH VERSION] — follower progress
      report, recorded for [repl status] and exported as per-follower
      lag gauges;
    - [wait EPOCH VERSION [MS]] — block until the leader reaches the
      token (trivially true on the leader itself; kept symmetric with
      followers so clients can send it to either end).

    All state captures run under the daemon's scheduler read lock, so a
    frames response never cuts a decision frame in half and its
    (epoch, version) header describes exactly the shipped prefix. *)

type t

val attach : ?chunk_limit:int -> Server.Daemon.t -> (t, string) result
(** Requires the daemon to have an attached WAL
    ({!Server.Daemon.attach_durable}). [chunk_limit] bounds snapshot
    chunks (default 1 MiB). *)

val followers : t -> (string * (int * int * int * int)) list
(** Last acked (gen, offset, epoch, version) per follower name. *)
