module Daemon = Server.Daemon
module Client = Server.Client
module Protocol = Server.Protocol
module Repo = Gkbms.Repository
module Durable = Gkbms.Durable
module Wal = Durability.Wal

let cursor_file dir = Filename.concat dir "repl.cursor"

let g_chunks =
  Obs.Registry.counter Obs.Registry.default "gkbms_repl_chunks_received_total"
    ~help:"WAL frame chunks received from the leader"

let g_bytes =
  Obs.Registry.counter Obs.Registry.default "gkbms_repl_bytes_received_total"
    ~help:"WAL bytes received from the leader"

let g_bootstraps =
  Obs.Registry.counter Obs.Registry.default "gkbms_repl_bootstraps_total"
    ~help:"Snapshot bootstraps performed by this follower"

type t = {
  name : string;
  leader : string;  (** where to redirect writes *)
  dir : string;
  connect : unit -> (Client.t, string) result;
  daemon : Daemon.t;
  durable : Durable.t;
  repo : Repo.t;
  applier : Applier.t;
  m : Mutex.t;
  mutable cursor_gen : int;  (** scan cursor: where the next request reads *)
  mutable cursor_offset : int;
  mutable safe_gen : int;
      (** persisted-safe cursor: last frame-boundary (applier depth 0)
          position; resuming here never replays half a decision *)
  mutable safe_offset : int;
  mutable applied_epoch : int;  (** leader token this state is caught up to *)
  mutable applied_version : int;
  mutable chunk_bytes : int;  (** adaptive request size *)
  mutable conn : Client.t option;
  mutable last_error : string option;
  mutable needs_resync : bool;
  mutable stop_flag : bool;
  mutable thread : Thread.t option;
}

let max_chunk = Protocol.max_frame - 4096

(* ------------------------------------------------------------------ *)
(* cursor persistence: tmp + rename, only ever describing a depth-0
   frame boundary.  A crash after apply but before persist just replays
   an overlap that the applier skips (already-logged decisions). *)

let persist_cursor t =
  let tmp = cursor_file t.dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Printf.fprintf oc "%d %d %d %d\n" t.safe_gen t.safe_offset t.applied_epoch
    t.applied_version;
  close_out oc;
  Sys.rename tmp (cursor_file t.dir)

let read_cursor dir =
  if not (Sys.file_exists (cursor_file dir)) then None
  else
    try
      let ic = open_in_bin (cursor_file dir) in
      let line = input_line ic in
      close_in ic;
      match
        List.filter_map int_of_string_opt
          (String.split_on_char ' ' (String.trim line))
      with
      | [ g; o; e; v ] -> Some (g, o, e, v)
      | _ -> None
    with _ -> None

let set_applied t epoch version =
  Mutex.lock t.m;
  if
    Wire.token_le (t.applied_epoch, t.applied_version) (epoch, version)
    && (epoch, version) <> (t.applied_epoch, t.applied_version)
  then begin
    t.applied_epoch <- epoch;
    t.applied_version <- version
  end;
  Mutex.unlock t.m;
  Obs.Registry.Gauge.set
    (Obs.Registry.gauge Obs.Registry.default "gkbms_repl_applied_version"
       ~labels:[ ("follower", t.name) ]
       ~help:"Leader (epoch, version) token this follower has applied \
              through (version half)")
    (float_of_int version)

let applied t =
  Mutex.lock t.m;
  let a = (t.applied_epoch, t.applied_version) in
  Mutex.unlock t.m;
  a

let cursor t = (t.cursor_gen, t.cursor_offset)
let daemon t = t.daemon
let repo t = t.repo
let last_error t = t.last_error
let needs_resync t = t.needs_resync

(* ------------------------------------------------------------------ *)
(* leader connection *)

let drop_conn t =
  (match t.conn with Some c -> (try Client.close c with _ -> ()) | None -> ());
  t.conn <- None

let ensure_conn t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
    match t.connect () with
    | Error e -> Error ("cannot reach leader: " ^ e)
    | Ok c -> (
      match Result.bind (Client.request c Wire.hello) Wire.parse_hello with
      | Ok _ ->
        t.conn <- Some c;
        Ok c
      | Error e ->
        (try Client.close c with _ -> ());
        Error ("leader handshake failed: " ^ e)))

(* ------------------------------------------------------------------ *)
(* applying a shipped chunk *)

let apply_chunk t ~offset chunk =
  let scan = Wal.scan_from ~expect_header:false chunk ~offset:0 in
  let consumed = scan.Wal.valid_bytes in
  if scan.Wal.records = [] then Ok (0, consumed)
  else
    let res =
      Daemon.exclusive t.daemon (fun () ->
          let pos = ref offset in
          let res =
            List.fold_left
              (fun acc r ->
                Result.bind acc (fun () ->
                    let fed = Applier.feed t.applier r in
                    pos := !pos + Applier.framed_size r;
                    if Applier.depth t.applier = 0 then begin
                      t.safe_gen <- t.cursor_gen;
                      t.safe_offset <- !pos
                    end;
                    fed))
              (Ok ()) scan.Wal.records
          in
          (* the shell normally drains the change batch after each
             command; nobody else does it on a follower *)
          ignore (Repo.drain_changes t.repo);
          (* our own journal recorded the replayed decisions; make them
             durable before the cursor can move past them *)
          Durable.sync t.durable;
          res)
    in
    Result.map (fun () -> (List.length scan.Wal.records, consumed)) res

let send_ack t conn =
  (* best-effort: progress reporting must never stall replication *)
  ignore
    (Client.request conn
       (Wire.ack ~name:t.name ~gen:t.safe_gen ~offset:t.safe_offset
          ~epoch:t.applied_epoch ~version:t.applied_version))

(* One pull/apply round.  Returns the number of records applied; 0 with
   [Ok] means caught up (or a cursor redirect).  [wait_ms] long-polls on
   the leader when it has nothing new. *)
let step ?(wait_ms = 0) t =
  if t.needs_resync then
    Error "resync required: restart the follower to re-bootstrap"
  else
    match ensure_conn t with
    | Error e ->
      t.last_error <- Some e;
      Error e
    | Ok conn -> (
      let gen = t.cursor_gen and offset = t.cursor_offset in
      match
        Client.request conn
          (Wire.frames ~gen ~offset ~max_bytes:t.chunk_bytes ~wait_ms)
      with
      | Error msg when Wire.is_resync_error msg ->
        t.needs_resync <- true;
        t.last_error <- Some msg;
        Error msg
      | Error msg ->
        (* transport trouble or leader restart: reconnect next round *)
        drop_conn t;
        t.last_error <- Some msg;
        Error msg
      | Ok payload -> (
        match Wire.parse_frames payload with
        | Error e ->
          t.last_error <- Some e;
          Error e
        | Ok r ->
          t.last_error <- None;
          if r.Wire.f_chunk = "" then begin
            if r.Wire.f_next_gen <> t.cursor_gen then begin
              (* generation redirect: the archived log is exhausted.  A
                 recovery-archived generation can end inside a decision
                 frame the leader rolled back — drop it *)
              Daemon.exclusive t.daemon (fun () -> Applier.reset t.applier);
              t.cursor_gen <- r.Wire.f_next_gen;
              t.cursor_offset <- r.Wire.f_next_offset;
              t.safe_gen <- r.Wire.f_next_gen;
              t.safe_offset <- r.Wire.f_next_offset;
              persist_cursor t
            end
            else if r.Wire.f_caught_up then begin
              set_applied t r.Wire.f_epoch r.Wire.f_version;
              persist_cursor t;
              send_ack t conn
            end;
            Ok 0
          end
          else begin
            Obs.Registry.Counter.inc g_chunks;
            Obs.Registry.Counter.inc g_bytes
              ~by:(String.length r.Wire.f_chunk);
            match apply_chunk t ~offset r.Wire.f_chunk with
            | Error e ->
              t.last_error <- Some ("apply: " ^ e);
              Error ("apply: " ^ e)
            | Ok (records, consumed) ->
              if consumed = 0 then begin
                (* a single frame larger than the request window *)
                if t.chunk_bytes >= max_chunk then
                  Error "frame exceeds the maximum request window"
                else begin
                  t.chunk_bytes <- min (t.chunk_bytes * 2) max_chunk;
                  Ok 0
                end
              end
              else begin
                t.cursor_offset <- offset + consumed;
                if
                  consumed = String.length r.Wire.f_chunk
                  && r.Wire.f_caught_up
                then set_applied t r.Wire.f_epoch r.Wire.f_version;
                persist_cursor t;
                send_ack t conn;
                Ok records
              end
          end))

(* Pull until a round makes no progress at all: the cursor, the applied
   token and the request window are all unchanged — which only happens
   on an empty caught-up response. *)
let rec catch_up ?(wait_ms = 0) t =
  let before =
    (t.cursor_gen, t.cursor_offset, t.chunk_bytes, applied t)
  in
  match step ~wait_ms t with
  | Error e -> Error e
  | Ok _ ->
    if (t.cursor_gen, t.cursor_offset, t.chunk_bytes, applied t) = before then
      Ok ()
    else catch_up ~wait_ms t

(* ------------------------------------------------------------------ *)
(* read-your-writes: block until the applied token covers the client's *)

let wait_for t ~epoch ~version ~timeout_ms =
  let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1e3) in
  let rec go () =
    if Wire.token_le (epoch, version) (applied t) then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let default_wait_ms = 5_000
let max_wait_ms = 60_000

let extension t line =
  match
    List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line))
  with
  | [ "repl"; "applied" ] ->
    let e, v = applied t in
    Some (Wire.format_token ~epoch:e ~version:v)
  | [ "repl"; "status" ] ->
    Some
      (Printf.sprintf "follower %s gen %d offset %d epoch %d version %d%s"
         t.name t.cursor_gen t.cursor_offset t.applied_epoch t.applied_version
         (match t.last_error with
         | Some e when t.needs_resync -> " resync: " ^ e
         | _ -> ""))
  | "wait" :: epoch :: version :: rest -> (
    let timeout_ms =
      match rest with
      | [ ms ] -> Option.value (int_of_string_opt ms) ~default:default_wait_ms
      | _ -> default_wait_ms
    in
    match (int_of_string_opt epoch, int_of_string_opt version) with
    | Some epoch, Some version ->
      let timeout_ms = max 0 (min timeout_ms max_wait_ms) in
      if wait_for t ~epoch ~version ~timeout_ms then
        let e, v = applied t in
        Some (Wire.format_token ~epoch:e ~version:v)
      else
        let e, v = applied t in
        Some
          (Printf.sprintf "error: wait: follower at %d:%d, needed %d:%d \
                           (timeout)" e v epoch version)
    | _ -> Some "error: usage: wait EPOCH VERSION [TIMEOUT_MS]")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* bootstrap / recover *)

let fetch_snapshot conn =
  let buf = Buffer.create 65536 in
  let rec go ~from ~expect_gen =
    match Result.bind (Client.request conn (Wire.snapshot ~from)) Wire.parse_snapshot
    with
    | Error e -> Error e
    | Ok r ->
      if
        match expect_gen with
        | Some g -> g <> r.Wire.s_generation
        | None -> false
      then begin
        (* the leader checkpointed mid-transfer; the file we were
           reading is gone — restart against the new generation *)
        Buffer.clear buf;
        go ~from:0 ~expect_gen:None
      end
      else begin
        Buffer.add_string buf r.Wire.s_chunk;
        let got = from + String.length r.Wire.s_chunk in
        if got >= r.Wire.s_total then
          Ok (r.Wire.s_generation, r.Wire.s_offset, Buffer.contents buf)
        else if r.Wire.s_chunk = "" then
          Error "leader sent an empty snapshot chunk before the total"
        else go ~from:got ~expect_gen:(Some r.Wire.s_generation)
      end
  in
  go ~from:0 ~expect_gen:None

let follower_config config leader =
  { config with Daemon.read_only = Some leader }

let create ?(config = Daemon.default_config) ?name ~leader ~connect ~dir () =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "follower-%d" (Unix.getpid ())
  in
  let fresh_bootstrap () =
    match connect () with
    | Error e -> Error ("cannot reach leader: " ^ e)
    | Ok conn -> (
      let r =
        match Result.bind (Client.request conn Wire.hello) Wire.parse_hello with
        | Error e -> Error ("leader handshake failed: " ^ e)
        | Ok _ -> (
          match fetch_snapshot conn with
          | Error e -> Error ("snapshot: " ^ e)
          | Ok (gen, offset, data) -> (
            match Gkbms.Persist.load_repository data with
            | Error e -> Error ("snapshot decode: " ^ e)
            | Ok repo -> (
              match Durable.attach ~dir repo with
              | Error e -> Error e
              | Ok durable ->
                Obs.Registry.Counter.inc g_bootstraps;
                Ok (repo, durable, gen, offset, 0, 0))))
      in
      (try Client.close conn with _ -> ());
      r)
  in
  let boot =
    if
      Sys.file_exists (Durable.checkpoint_path dir)
      && read_cursor dir <> None
    then
      (* warm restart: rebuild local state from our own WAL, resume the
         stream at the persisted frame-boundary cursor *)
      match Durable.open_ ~dir () with
      | Error e -> Error ("follower recovery: " ^ e)
      | Ok (durable, _report) ->
        let g, o, e, v = Option.get (read_cursor dir) in
        Ok (Durable.repo durable, durable, g, o, e, v)
    else fresh_bootstrap ()
  in
  match boot with
  | Error e -> Error e
  | Ok (repo, durable, gen, offset, epoch, version) -> (
    let daemon = Daemon.create ~config:(follower_config config leader) repo in
    match Daemon.attach_durable daemon durable with
    | Error e -> Error e
    | Ok () ->
      let t =
        {
          name;
          leader;
          dir;
          connect;
          daemon;
          durable;
          repo;
          applier = Applier.create repo;
          m = Mutex.create ();
          cursor_gen = gen;
          cursor_offset = offset;
          safe_gen = gen;
          safe_offset = offset;
          applied_epoch = epoch;
          applied_version = version;
          chunk_bytes = 1 lsl 20;
          conn = None;
          last_error = None;
          needs_resync = false;
          stop_flag = false;
          thread = None;
        }
      in
      persist_cursor t;
      Daemon.set_extension daemon (extension t);
      Ok t)

let leader_addr t = t.leader
let name t = t.name

(* ------------------------------------------------------------------ *)
(* the puller thread *)

let start ?(wait_ms = 500) t =
  if t.thread = None then
    t.thread <-
      Some
        (Thread.create
           (fun () ->
             while not t.stop_flag do
               match step ~wait_ms t with
               | Ok _ -> ()
               | Error _ ->
                 (* resync demands an operator restart; transient
                    failures back off briefly before reconnecting *)
                 if t.needs_resync then Thread.delay 0.5
                 else Thread.delay 0.2
             done)
           ())

let stop t =
  t.stop_flag <- true;
  (match t.thread with
  | Some th ->
    (try Thread.join th with _ -> ());
    t.thread <- None
  | None -> ());
  drop_conn t;
  Daemon.stop t.daemon
