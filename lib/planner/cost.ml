open Kernel
module Term = Logic.Term
module Vars = Set.Make (String)

type est = {
  rows : Symbol.t -> int option;
  distinct : Symbol.t -> int -> int option;
}

(* Defaults when a predicate has never been observed (e.g. external
   relations without an attached collector): a middling relation with
   10% selectivity per bound column — the classic System-R guesses. *)
let default_rows = 1000.
let default_selectivity = 0.1

let of_stats ?stats d =
  let rows p =
    match stats with
    | Some s -> (
      match Stats.rows s p with
      | Some n -> Some n
      | None ->
        let n = Logic.Datalog.fact_count d p in
        if n > 0 then Some n else None)
    | None ->
      let n = Logic.Datalog.fact_count d p in
      if n > 0 then Some n else None
  in
  let distinct p i =
    match stats with Some s -> Stats.distinct s p i | None -> None
  in
  { rows; distinct }

type lit_plan = {
  lit : Term.literal;
  est_rows : float;
  scan_cost : float;
  indexed : bool;
}

type body_plan = { order : lit_plan list; est_out : float }

let term_bound bound = function
  | Term.Var v -> Vars.mem v bound
  | Term.Sym _ | Term.Int _ -> true

let atom_new_vars bound (a : Term.atom) =
  Array.fold_left
    (fun acc t ->
      match t with
      | Term.Var v when not (Vars.mem v bound) -> Vars.add v acc
      | _ -> acc)
    Vars.empty a.args

let lit_vars = function
  | Term.Pos a | Term.Neg a -> Term.atom_vars a
  | Term.Cmp (_, x, y) ->
    List.concat_map (function Term.Var v -> [ v ] | _ -> []) [ x; y ]

let lit_ready bound lit =
  List.for_all (fun v -> Vars.mem v bound) (lit_vars lit)

(* Estimated matching tuples and scan cost of one positive atom under
   the current bindings. *)
let estimate_atom est bound (a : Term.atom) =
  let n =
    match est.rows a.pred with
    | Some r -> float_of_int (max 1 r)
    | None -> default_rows
  in
  let sel = ref 1.0 in
  Array.iteri
    (fun i t ->
      if term_bound bound t then
        let s =
          match est.distinct a.pred i with
          | Some d when d > 0 -> 1.0 /. float_of_int d
          | Some _ | None -> default_selectivity
        in
        sel := !sel *. s)
    a.args;
  let est_rows = Float.max 1.0 (n *. !sel) in
  let len = Array.length a.args in
  let indexed =
    (len > 0 && term_bound bound a.args.(0))
    || (len > 1 && term_bound bound a.args.(len - 1))
  in
  (* With an end argument bound the hash index narrows the scan to one
     bucket (≈ the matching rows); otherwise every tuple is touched. *)
  let scan_cost = if indexed then est_rows else n in
  (est_rows, scan_cost, indexed)

let order_body est ~bound (body : Term.literal list) =
  let positives, filters =
    List.partition (function Term.Pos _ -> true | _ -> false) body
  in
  let bound = ref bound in
  let pending = ref filters in
  let remaining = ref positives in
  let order = ref [] in
  let est_out = ref 1.0 in
  (* Place every Neg/Cmp whose variables are all bound (the engine
     would delay them anyway; placing them early prunes sooner). *)
  let flush_filters () =
    let ready, rest = List.partition (lit_ready !bound) !pending in
    pending := rest;
    List.iter
      (fun lit ->
        order := { lit; est_rows = 0.; scan_cost = 0.; indexed = false } :: !order)
      ready
  in
  flush_filters ();
  while !remaining <> [] do
    (* Greedy: cheapest scan next, ties broken by smaller output — but
       never pick a literal disconnected from the bound variables while
       a connected one exists.  A disconnected pick is a cross product,
       and (crucially for the magic-sets SIPS) it would discard the
       bindings the head passed down: an intensional literal chosen with
       no bound argument adorns as all-free, and its magic cone becomes
       the whole relation. *)
    let scored =
      List.map
        (fun lit ->
          match lit with
          | Term.Pos a ->
            let est_rows, scan_cost, indexed = estimate_atom est !bound a in
            ({ lit; est_rows; scan_cost; indexed }, a)
          | Term.Neg _ | Term.Cmp _ -> assert false)
        !remaining
    in
    let connected =
      List.filter
        (fun (_, (a : Term.atom)) ->
          Array.exists (term_bound !bound) a.args)
        scored
    in
    let scored = if connected <> [] then connected else scored in
    let best, best_atom =
      List.fold_left
        (fun (b, ba) (c, ca) ->
          if
            c.scan_cost < b.scan_cost
            || (c.scan_cost = b.scan_cost && c.est_rows < b.est_rows)
          then (c, ca)
          else (b, ba))
        (List.hd scored) (List.tl scored)
    in
    let rec remove_first = function
      | [] -> []
      | l :: rest -> if l == best.lit then rest else l :: remove_first rest
    in
    remaining := remove_first !remaining;
    order := best :: !order;
    est_out := !est_out *. best.est_rows;
    bound := Vars.union !bound (atom_new_vars !bound best_atom);
    flush_filters ()
  done;
  (* Whatever filters never became ground are appended at the end; the
     engine keeps delaying them until their variables are bound. *)
  List.iter
    (fun lit ->
      order := { lit; est_rows = 0.; scan_cost = 0.; indexed = false } :: !order)
    !pending;
  { order = List.rev !order; est_out = !est_out }
