open Kernel
module Term = Logic.Term

(* Per-predicate statistics.  [per_arg.(i)] maps each value seen at
   argument position [i] to its multiplicity, so distinct counts stay
   exact under retraction (a value drops out when its count hits 0). *)
type pred_stats = {
  mutable rows : int;
  mutable per_arg : (Term.t, int) Hashtbl.t array;
  gauge : Obs.Registry.Gauge.t;
}

type t = {
  m : Mutex.t;  (** adds/removes may arrive from server writer threads *)
  preds : pred_stats Symbol.Tbl.t;
}

let reg = Obs.Registry.default

let pred_gauge p =
  Obs.Registry.gauge reg "gkbms_datalog_pred_rows"
    ~labels:[ ("pred", Symbol.name p) ]
    ~help:"Stored extensional tuples per predicate (planner statistics)"

let create () = { m = Mutex.create (); preds = Symbol.Tbl.create 32 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let get_stats t p arity =
  match Symbol.Tbl.find_opt t.preds p with
  | Some s ->
    (* Arity can grow if a predicate is observed with mixed widths
       (should not happen in practice, but never index out of range). *)
    if Array.length s.per_arg < arity then
      s.per_arg <-
        Array.init arity (fun i ->
            if i < Array.length s.per_arg then s.per_arg.(i)
            else Hashtbl.create 16);
    s
  | None ->
    let s =
      {
        rows = 0;
        per_arg = Array.init arity (fun _ -> Hashtbl.create 16);
        gauge = pred_gauge p;
      }
    in
    Symbol.Tbl.add t.preds p s;
    s

let observe_add t p (args : Term.t array) =
  locked t @@ fun () ->
  let s = get_stats t p (Array.length args) in
  s.rows <- s.rows + 1;
  Array.iteri
    (fun i v ->
      let tbl = s.per_arg.(i) in
      let n = match Hashtbl.find_opt tbl v with Some n -> n | None -> 0 in
      Hashtbl.replace tbl v (n + 1))
    args;
  Obs.Registry.Gauge.set s.gauge (float_of_int s.rows)

let observe_remove t p (args : Term.t array) =
  locked t @@ fun () ->
  match Symbol.Tbl.find_opt t.preds p with
  | None -> ()
  | Some s ->
    s.rows <- max 0 (s.rows - 1);
    Array.iteri
      (fun i v ->
        if i < Array.length s.per_arg then
          let tbl = s.per_arg.(i) in
          match Hashtbl.find_opt tbl v with
          | Some n when n <= 1 -> Hashtbl.remove tbl v
          | Some n -> Hashtbl.replace tbl v (n - 1)
          | None -> ())
      args;
    Obs.Registry.Gauge.set s.gauge (float_of_int s.rows)

let rows t p =
  locked t @@ fun () ->
  match Symbol.Tbl.find_opt t.preds p with
  | Some s -> Some s.rows
  | None -> None

let distinct t p i =
  locked t @@ fun () ->
  match Symbol.Tbl.find_opt t.preds p with
  | Some s when i >= 0 && i < Array.length s.per_arg ->
    Some (Hashtbl.length s.per_arg.(i))
  | Some _ | None -> None

let preds t =
  locked t (fun () ->
      Symbol.Tbl.fold (fun p s acc -> (p, s.rows) :: acc) t.preds [])
  |> List.sort (fun (a, _) (b, _) -> Symbol.compare a b)

let seed_datalog t d =
  List.iter
    (fun p ->
      List.iter
        (fun args -> observe_add t p (Array.of_list args))
        (Logic.Datalog.facts_of d p))
    (Logic.Datalog.fact_preds d)

let attach_base t base ~tuples_of =
  Store.Base.on_change base (function
    | Store.Base.Added p ->
      List.iter (fun (pred, args) -> observe_add t pred args) (tuples_of p)
    | Store.Base.Removed p ->
      List.iter (fun (pred, args) -> observe_remove t pred args) (tuples_of p))
