(** Magic-sets rewriting for bound queries.

    Given a query atom with some ground arguments, rewrite the program
    so bottom-up evaluation only derives tuples relevant to those
    bindings: each reachable IDB predicate is specialized per
    {e adornment} (the b/f pattern of bound/free arguments it is called
    with), guarded by a [magic@p@bf] predicate holding exactly the
    bound-argument combinations the query can reach, seeded from the
    query's own constants.  Rule bodies are SIPS-ordered by the cost
    model ({!Cost.order_body}), so bindings pass sideways through the
    cheapest join order.

    The rewrite is restricted to the monotone cone: if any reachable
    rule negates an IDB predicate the rewrite aborts
    ([Error `Nonmonotone]) and the caller falls back to unrewritten
    evaluation — magic filtering under negation can change answers.
    Negation over extensional/external predicates and comparisons pass
    through untouched.  EDB/external query predicates need no rewrite
    at all ([Error `Edb]): the engine's indexes already serve them. *)

open Kernel

type rule_plan = {
  pred : Symbol.t;  (** adorned head predicate *)
  clause : Logic.Term.clause;  (** the rewritten, SIPS-ordered rule *)
  lits : Cost.lit_plan list;  (** per-literal estimates, for [explain] *)
  est_out : float;
}

type rewrite = {
  clauses : Logic.Term.clause list;  (** seeds + magic rules + adorned rules *)
  answer : Logic.Term.atom;  (** query atom renamed to its adorned predicate *)
  rule_plans : rule_plan list;
  magic_rules : int;
  adorned_preds : (Symbol.t * string) list;
      (** (adorned predicate, b/f adornment string) *)
}

val rewrite :
  est:Cost.est ->
  is_idb:(Symbol.t -> bool) ->
  rules:Logic.Term.clause list ->
  Logic.Term.atom ->
  (rewrite, [ `Nonmonotone | `Edb ]) result
