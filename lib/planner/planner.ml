module Stats = Stats
module Cost = Cost
module Magic = Magic

open Kernel
module Term = Logic.Term
module Datalog = Logic.Datalog

let env_enabled () =
  match Sys.getenv_opt "GKBMS_PLANNER" with
  | Some v -> (
    match String.lowercase_ascii (String.trim v) with
    | "on" | "1" | "true" | "yes" -> true
    | _ -> false)
  | None -> false

let enabled = ref (env_enabled ())
let on () = !enabled
let set_enabled b = enabled := b

let reg = Obs.Registry.default

let g_plans =
  Obs.Registry.counter reg "gkbms_planner_plans_total"
    ~help:"Queries planned (any strategy)"

let g_magic =
  Obs.Registry.counter reg "gkbms_planner_magic_rewrites_total"
    ~help:"Queries answered through a magic-sets rewrite"

let g_fallbacks =
  Obs.Registry.counter reg "gkbms_planner_fallbacks_total"
    ~help:"IDB queries where magic was unsafe (nonmonotone cone): cost-ordered full evaluation"

let g_edb =
  Obs.Registry.counter reg "gkbms_planner_edb_shortcuts_total"
    ~help:"Queries on extensional predicates answered straight from the indexes"

let g_plan_us =
  Obs.Registry.histogram reg "gkbms_planner_plan_us"
    ~help:"Planning time (statistics + rewrite, before evaluation) in microseconds"

(* What the planner decided for one query, before evaluation. *)
type plan =
  | Edb  (** extensional/external: match stored indexes directly *)
  | Magic of Magic.rewrite
  | Ordered of (Term.clause * Cost.body_plan) list
      (** nonmonotone cone: full program, cost-ordered bodies *)

let make_plan ?stats d (q : Term.atom) =
  let est = Cost.of_stats ?stats d in
  match
    Magic.rewrite ~est ~is_idb:(Datalog.is_idb d) ~rules:(Datalog.clauses d) q
  with
  | Ok rw -> Magic rw
  | Error `Edb -> Edb
  | Error `Nonmonotone ->
    Ordered
      (List.map
         (fun (c : Term.clause) ->
           let plan = Cost.order_body est ~bound:Cost.Vars.empty c.body in
           let body = List.map (fun (lp : Cost.lit_plan) -> lp.lit) plan.order in
           ({ c with Term.body }, plan))
         (Datalog.clauses d))

let timed_plan ?stats d q =
  let t0 = Unix.gettimeofday () in
  let p = make_plan ?stats d q in
  Obs.Registry.Counter.inc g_plans;
  Obs.Histogram.observe g_plan_us ((Unix.gettimeofday () -. t0) *. 1e6);
  (match p with
  | Edb -> Obs.Registry.Counter.inc g_edb
  | Magic _ -> Obs.Registry.Counter.inc g_magic
  | Ordered _ -> Obs.Registry.Counter.inc g_fallbacks);
  p

(* Install the planned program into a fresh view, solve, match. *)
let run_plan ?pool d (q : Term.atom) = function
  | Edb -> Ok (Datalog.match_atom d q Term.Subst.empty)
  | Magic rw -> (
    let view = Datalog.derive_view d in
    let rec install = function
      | [] -> Ok ()
      | c :: rest -> (
        match Datalog.add_clause view c with
        | Ok () -> install rest
        | Error e -> Error e)
    in
    match install rw.Magic.clauses with
    | Error e -> Error e
    | Ok () -> (
      match Datalog.solve ?pool view with
      | Error e -> Error e
      | Ok () -> Ok (Datalog.match_atom view rw.Magic.answer Term.Subst.empty)))
  | Ordered planned -> (
    let view = Datalog.derive_view d in
    let rec install = function
      | [] -> Ok ()
      | (c, _) :: rest -> (
        match Datalog.add_clause view c with
        | Ok () -> install rest
        | Error e -> Error e)
    in
    match install planned with
    | Error e -> Error e
    | Ok () -> (
      match Datalog.solve ?pool view with
      | Error e -> Error e
      | Ok () -> Ok (Datalog.match_atom view q Term.Subst.empty)))

let query ?stats ?pool d q = run_plan ?pool d q (timed_plan ?stats d q)

(* Explain ---------------------------------------------------------------- *)

let pp_est ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.1f" v

let render_lit_plan buf indent (lp : Cost.lit_plan) =
  match lp.lit with
  | Term.Pos _ ->
    Buffer.add_string buf
      (Format.asprintf "%s%a  (est %a rows, %s)\n" indent Term.pp_literal
         lp.lit pp_est lp.est_rows
         (if lp.indexed then "indexed" else "scan"))
  | Term.Neg _ | Term.Cmp _ ->
    Buffer.add_string buf
      (Format.asprintf "%s%a  (filter)\n" indent Term.pp_literal lp.lit)

let render_statistics ?stats buf d preds =
  let est = Cost.of_stats ?stats d in
  List.iter
    (fun p ->
      match est.Cost.rows p with
      | Some n ->
        Buffer.add_string buf
          (Format.asprintf "  %a: %d rows\n" Symbol.pp p n)
      | None ->
        Buffer.add_string buf (Format.asprintf "  %a: no statistics\n" Symbol.pp p))
    preds

let body_preds (cs : Term.clause list) =
  List.concat_map
    (fun (c : Term.clause) ->
      List.filter_map
        (function
          | Term.Pos a | Term.Neg a -> Some a.Term.pred
          | Term.Cmp _ -> None)
        c.body)
    cs
  |> List.sort_uniq Symbol.compare

let explain ?stats ?pool d (q : Term.atom) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Format.asprintf "query: %a\n" Term.pp_atom q);
  let plan = timed_plan ?stats d q in
  (match plan with
  | Edb ->
    Buffer.add_string buf
      "strategy: extensional (stored indexes, no rule evaluation)\n";
    Buffer.add_string buf "statistics:\n";
    render_statistics ?stats buf d [ q.Term.pred ]
  | Magic rw ->
    Buffer.add_string buf
      (Format.asprintf
         "strategy: magic-sets (%d adorned predicates, %d magic rules, %d clauses)\n"
         (List.length rw.Magic.adorned_preds)
         rw.Magic.magic_rules
         (List.length rw.Magic.clauses));
    Buffer.add_string buf "statistics:\n";
    render_statistics ?stats buf d (body_preds (Datalog.clauses d));
    Buffer.add_string buf "plan:\n";
    List.iter
      (fun (rp : Magic.rule_plan) ->
        Buffer.add_string buf
          (Format.asprintf "  %a  (est out %a)\n" Term.pp_clause rp.Magic.clause
             pp_est rp.Magic.est_out);
        List.iter (render_lit_plan buf "    ") rp.Magic.lits)
      rw.Magic.rule_plans
  | Ordered planned ->
    Buffer.add_string buf
      "strategy: cost-ordered full evaluation (nonmonotone cone: magic-sets unsafe)\n";
    Buffer.add_string buf "statistics:\n";
    render_statistics ?stats buf d (body_preds (Datalog.clauses d));
    Buffer.add_string buf "plan:\n";
    List.iter
      (fun ((c : Term.clause), (bp : Cost.body_plan)) ->
        Buffer.add_string buf
          (Format.asprintf "  %a  (est out %a)\n" Term.pp_clause c pp_est
             bp.Cost.est_out);
        List.iter (render_lit_plan buf "    ") bp.Cost.order)
      planned);
  (* Evaluate the plan once to show estimated vs. actual cardinalities
     (for magic plans, on a view we keep so materializations can be
     counted per adorned predicate). *)
  let evaluated =
    match plan with
    | Magic rw -> (
      let view = Datalog.derive_view d in
      let rec install = function
        | [] -> Ok ()
        | c :: rest -> (
          match Datalog.add_clause view c with
          | Ok () -> install rest
          | Error e -> Error e)
      in
      match install rw.Magic.clauses with
      | Error e -> Error e
      | Ok () -> (
        match Datalog.solve ?pool view with
        | Error e -> Error e
        | Ok () ->
          Buffer.add_string buf "estimated vs actual:\n";
          let est_of p =
            List.filter_map
              (fun (rp : Magic.rule_plan) ->
                if Symbol.equal rp.Magic.pred p then Some rp.Magic.est_out
                else None)
              rw.Magic.rule_plans
          in
          List.iter
            (fun (p, ad) ->
              let actual = List.length (Datalog.facts_of view p) in
              match est_of p with
              | [] ->
                Buffer.add_string buf
                  (Format.asprintf "  %a[%s]: actual %d\n" Symbol.pp p ad
                     actual)
              | ests ->
                Buffer.add_string buf
                  (Format.asprintf "  %a[%s]: est %a, actual %d\n" Symbol.pp p
                     ad pp_est
                     (List.fold_left ( +. ) 0. ests)
                     actual))
            rw.Magic.adorned_preds;
          Ok (Datalog.match_atom view rw.Magic.answer Term.Subst.empty)))
    | Edb | Ordered _ -> run_plan ?pool d q plan
  in
  match evaluated with
  | Error e -> Error e
  | Ok answers ->
    Buffer.add_string buf (Format.asprintf "answers: %d\n" (List.length answers));
    Ok (Buffer.contents buf)
