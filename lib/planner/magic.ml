open Kernel
module Term = Logic.Term
module Vars = Cost.Vars

exception Nonmonotone

type rule_plan = {
  pred : Symbol.t;
  clause : Term.clause;
  lits : Cost.lit_plan list;
  est_out : float;
}

type rewrite = {
  clauses : Term.clause list;
  answer : Term.atom;
  rule_plans : rule_plan list;
  magic_rules : int;
  adorned_preds : (Symbol.t * string) list;
}

let adornment_string ad =
  String.init (Array.length ad) (fun i -> if ad.(i) then 'b' else 'f')

(* '@' cannot appear in parsed predicate names, so adorned and magic
   predicates never collide with user predicates. *)
let adorned_name p ad =
  Symbol.intern (Symbol.name p ^ "@" ^ adornment_string ad)

let magic_name p ad =
  Symbol.intern ("magic@" ^ Symbol.name p ^ "@" ^ adornment_string ad)

let adornment_of bound (args : Term.t array) =
  Array.map
    (function
      | Term.Var v -> Vars.mem v bound
      | Term.Sym _ | Term.Int _ -> true)
    args

let bound_args ad (args : Term.t array) =
  let out = ref [] in
  Array.iteri (fun i a -> if ad.(i) then out := a :: !out) args;
  Array.of_list (List.rev !out)

let atom_vars_set (a : Term.atom) =
  List.fold_left (fun acc v -> Vars.add v acc) Vars.empty (Term.atom_vars a)

let rewrite ~est ~is_idb ~rules (q : Term.atom) =
  if not (is_idb q.Term.pred) then Error `Edb
  else
    try
      let out = ref [] in
      let rule_plans = ref [] in
      let magic_rules = ref 0 in
      let adorned_preds = ref [] in
      let seen = Hashtbl.create 16 in
      let queue = Queue.create () in
      let enqueue p ad = Queue.add (p, ad) queue in
      let q_ad = adornment_of Vars.empty q.Term.args in
      enqueue q.Term.pred q_ad;
      while not (Queue.is_empty queue) do
        let p, ad = Queue.pop queue in
        let key = (p, adornment_string ad) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          let p_ad = adorned_name p ad in
          adorned_preds := (p_ad, adornment_string ad) :: !adorned_preds;
          List.iter
            (fun (c : Term.clause) ->
              if Symbol.equal c.head.pred p then begin
                (* Head variables at bound positions are bound by the
                   magic predicate; SIPS-order the body under them. *)
                let bound0 =
                  Array.to_list (bound_args ad c.head.args)
                  |> List.fold_left
                       (fun acc t ->
                         match t with
                         | Term.Var v -> Vars.add v acc
                         | Term.Sym _ | Term.Int _ -> acc)
                       Vars.empty
                in
                let plan = Cost.order_body est ~bound:bound0 c.body in
                let head_magic =
                  Term.Pos
                    {
                      Term.pred = magic_name p ad;
                      args = bound_args ad c.head.args;
                    }
                in
                let bound = ref bound0 in
                let prefix = ref [ head_magic ] in
                List.iter
                  (fun (lp : Cost.lit_plan) ->
                    match lp.lit with
                    | Term.Pos a when is_idb a.pred ->
                      let ad_b = adornment_of !bound a.args in
                      enqueue a.pred ad_b;
                      let bargs = bound_args ad_b a.args in
                      out :=
                        {
                          Term.head =
                            { Term.pred = magic_name a.pred ad_b; args = bargs };
                          body = List.rev !prefix;
                        }
                        :: !out;
                      incr magic_rules;
                      prefix :=
                        Term.Pos { a with Term.pred = adorned_name a.pred ad_b }
                        :: !prefix;
                      bound := Vars.union !bound (atom_vars_set a)
                    | Term.Pos a ->
                      prefix := lp.lit :: !prefix;
                      bound := Vars.union !bound (atom_vars_set a)
                    | Term.Neg a ->
                      if is_idb a.pred then raise Nonmonotone;
                      prefix := lp.lit :: !prefix
                    | Term.Cmp _ -> prefix := lp.lit :: !prefix)
                  plan.order;
                let adorned =
                  {
                    Term.head = { c.head with Term.pred = p_ad };
                    body = List.rev !prefix;
                  }
                in
                out := adorned :: !out;
                rule_plans :=
                  {
                    pred = p_ad;
                    clause = adorned;
                    lits = plan.order;
                    est_out = plan.est_out;
                  }
                  :: !rule_plans
              end)
            rules
        end
      done;
      (* Seed: the query's own constants are the first magic tuple. *)
      let seed =
        {
          Term.head =
            { Term.pred = magic_name q.Term.pred q_ad;
              args = bound_args q_ad q.Term.args };
          body = [];
        }
      in
      (* Distinct body occurrences can emit structurally identical magic
         rules; evaluating duplicates is pure waste, so dedupe. *)
      let dedup = Hashtbl.create 32 in
      let clauses =
        List.filter
          (fun c ->
            let key = Format.asprintf "%a" Term.pp_clause c in
            if Hashtbl.mem dedup key then false
            else begin
              Hashtbl.add dedup key ();
              true
            end)
          (seed :: List.rev !out)
      in
      Ok
        {
          clauses;
          answer = { q with Term.pred = adorned_name q.Term.pred q_ad };
          rule_plans = List.rev !rule_plans;
          magic_rules = !magic_rules;
          adorned_preds = List.rev !adorned_preds;
        }
    with Nonmonotone -> Error `Nonmonotone
