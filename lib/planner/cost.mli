(** Bottom-up cost model and per-rule join-order planner.

    A literal's cost is estimated System-R style from the statistics:
    estimated matching rows = cardinality × ∏ (1 / distinct(arg i))
    over the bound argument positions, and the scan cost is that
    estimate when the engine's first/last-argument hash index applies
    (first or last argument bound) or the full cardinality otherwise.
    {!order_body} greedily picks the cheapest evaluable positive
    literal next — preferring literals connected to the bound-variable
    set over cross products, so the magic-sets SIPS keeps propagating
    the head's bindings — growing the bound-variable set as it goes,
    and schedules negation/comparison filters as soon as their
    variables are bound.  Reordering is answer-invariant: positive-literal join
    order never changes the fixpoint, and the engine already delays
    non-ground [Neg]/[Cmp] literals. *)

open Kernel

module Vars : Set.S with type elt = string
(** Variable-name sets. *)

type est = {
  rows : Symbol.t -> int option;  (** cardinality, if known *)
  distinct : Symbol.t -> int -> int option;
      (** distinct values at an argument position, if known *)
}

val of_stats : ?stats:Stats.t -> Logic.Datalog.t -> est
(** Estimator backed by a collector (when given) with the engine's own
    explicit fact tables as fallback. *)

type lit_plan = {
  lit : Logic.Term.literal;
  est_rows : float;  (** estimated matching tuples under the bindings *)
  scan_cost : float;  (** tuples the engine will touch to find them *)
  indexed : bool;  (** first or last argument bound at evaluation time *)
}

type body_plan = {
  order : lit_plan list;  (** chosen evaluation order *)
  est_out : float;  (** estimated substitutions out of the body *)
}

val order_body : est -> bound:Vars.t -> Logic.Term.literal list -> body_plan
(** Order a clause body given the variables already bound (e.g. by a
    magic predicate or the bound head arguments). *)
