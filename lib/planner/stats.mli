(** Planner statistics: per-predicate cardinalities and per-argument
    distinct-value counts, maintained incrementally.

    The collector is fed tuple-level deltas — either directly
    ({!observe_add}/{!observe_remove}), from a whole Datalog EDB
    ({!seed_datalog}), or live off a proposition base
    ({!attach_base}), where the caller supplies the mapping from a
    stored proposition to the extensional tuples it contributes (the
    CML layer knows that mapping; the planner does not).

    Distinct counts are exact: each argument position keeps a
    value→multiplicity table, so retractions decrement correctly.
    Every predicate also exports a [gkbms_datalog_pred_rows{pred=...}]
    gauge through the default obs registry, which is what
    [stats --prom] renders. *)

open Kernel

type t

val create : unit -> t

val observe_add : t -> Symbol.t -> Logic.Term.t array -> unit
(** Record one stored tuple of a predicate. *)

val observe_remove : t -> Symbol.t -> Logic.Term.t array -> unit
(** Record the retraction of a stored tuple.  Unknown tuples clamp at
    zero rather than going negative. *)

val rows : t -> Symbol.t -> int option
(** Current cardinality estimate; [None] if the predicate has never
    been observed. *)

val distinct : t -> Symbol.t -> int -> int option
(** Distinct values seen at argument position [i] (0-based); [None] if
    unobserved or out of range. *)

val preds : t -> (Symbol.t * int) list
(** All observed predicates with their row counts, sorted by name. *)

val seed_datalog : t -> Logic.Datalog.t -> unit
(** Bulk-observe every explicitly stored fact of an engine (one-time
    warm-up for engines not fed through {!attach_base}). *)

val attach_base :
  t ->
  Store.Base.t ->
  tuples_of:(Prop.t -> (Symbol.t * Logic.Term.t array) list) ->
  Store.Base.subscription
(** Subscribe to a proposition base so the collector tracks every
    insertion/retraction from now on.  [tuples_of p] must list the
    extensional tuples proposition [p] contributes to the deductive
    view (the same enumeration the engine's external relations use).
    Returns the subscription id for {!Store.Base.off_change}. *)
