(** Cost-based query planner for the deductive-relational view.

    [query] answers one atom against a Datalog engine without paying
    for full materialization: extensional predicates are matched
    directly against the stored indexes, and intensional predicates
    are evaluated on a throwaway {!Logic.Datalog.derive_view} running
    the magic-sets rewrite of the program ({!Magic.rewrite}) — or, when
    the cone is nonmonotone, the original program with cost-ordered
    rule bodies ({!Cost.order_body}).  Answers are the same
    substitution set the unplanned engine produces (the differential
    suite holds this at 1/2/4 domains); only the work to reach them
    changes.

    The planner is gated process-wide: [GKBMS_PLANNER=on] (or
    {!set_enabled}) makes [Cml.Kb.derive] route through it.  [explain]
    works regardless of the gate. *)


module Stats = Stats
module Cost = Cost
module Magic = Magic

val on : unit -> bool
(** Current gate (initialized from [GKBMS_PLANNER]: ["on"], ["1"] or
    ["true"] enable). *)

val set_enabled : bool -> unit

val query :
  ?stats:Stats.t ->
  ?pool:Par.Pool.t ->
  Logic.Datalog.t ->
  Logic.Term.atom ->
  (Logic.Term.Subst.t list, string) result
(** Plan and evaluate one query.  The engine itself is not mutated (no
    solve, no materialization): evaluation happens on a view. *)

val explain :
  ?stats:Stats.t ->
  ?pool:Par.Pool.t ->
  Logic.Datalog.t ->
  Logic.Term.atom ->
  (string, string) result
(** Render the chosen plan — strategy, adornments, per-rule literal
    order with row estimates — then evaluate it and append estimated
    vs. actual cardinalities per planned predicate and the answer
    count. *)
