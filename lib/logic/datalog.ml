open Kernel

type tuple = Term.t array

(* A stored relation: the tuple set plus hash indexes on the first and
   last arguments, so lookups with either end bound (the two join
   directions of a binary relation, the common case in delta joins over
   recursive rules) avoid scanning the relation. *)
module Relation = struct
  type t = {
    tuples : (tuple, unit) Hashtbl.t;
    by_first : (Term.t, (tuple, unit) Hashtbl.t) Hashtbl.t;
    by_last : (Term.t, (tuple, unit) Hashtbl.t) Hashtbl.t;
  }

  let create () =
    {
      tuples = Hashtbl.create 64;
      by_first = Hashtbl.create 64;
      by_last = Hashtbl.create 64;
    }

  let mem r tup = Hashtbl.mem r.tuples tup

  let bucket_add idx key tup =
    let bucket =
      match Hashtbl.find_opt idx key with
      | Some b -> b
      | None ->
        let b = Hashtbl.create 8 in
        Hashtbl.add idx key b;
        b
    in
    Hashtbl.replace bucket tup ()

  let bucket_remove idx key tup =
    match Hashtbl.find_opt idx key with
    | Some b -> Hashtbl.remove b tup
    | None -> ()

  let add r tup =
    if mem r tup then false
    else begin
      Hashtbl.add r.tuples tup ();
      let n = Array.length tup in
      if n > 0 then begin
        bucket_add r.by_first tup.(0) tup;
        if n > 1 then bucket_add r.by_last tup.(n - 1) tup
      end;
      true
    end

  let remove r tup =
    if mem r tup then begin
      Hashtbl.remove r.tuples tup;
      let n = Array.length tup in
      if n > 0 then begin
        bucket_remove r.by_first tup.(0) tup;
        if n > 1 then bucket_remove r.by_last tup.(n - 1) tup
      end;
      true
    end
    else false

  let iter f (r : t) = Hashtbl.iter (fun tup () -> f tup) r.tuples
  let cardinal (r : t) = Hashtbl.length r.tuples
  let to_list (r : t) = Hashtbl.fold (fun tup () acc -> tup :: acc) r.tuples []

  let bucket_list idx key =
    match Hashtbl.find_opt idx key with
    | Some b -> Hashtbl.fold (fun tup () acc -> tup :: acc) b []
    | None -> []

  let find_first (r : t) key = bucket_list r.by_first key
  let find_last (r : t) key = bucket_list r.by_last key
end

type strategy = [ `Naive | `Seminaive ]

type stats = {
  full_solves : int;  (** complete from-scratch materializations *)
  incr_inserts : int;  (** fact insertions absorbed by a delta round *)
  incr_deletes : int;  (** fact deletions absorbed by delete-rederive *)
  fallbacks : int;  (** updates that had to invalidate instead *)
  delta_rounds : int;  (** semi-naive / DRed rounds run incrementally *)
  delta_tuples : int;  (** tuples moved by incremental propagation *)
  index_hits : int;  (** bound-first-argument indexed lookups *)
  index_misses : int;  (** full-relation scans *)
}

type counters = {
  mutable c_full_solves : int;
  mutable c_incr_inserts : int;
  mutable c_incr_deletes : int;
  mutable c_fallbacks : int;
  mutable c_delta_rounds : int;
  mutable c_delta_tuples : int;
  mutable c_index_hits : int;
  mutable c_index_misses : int;
}

type t = {
  facts : Relation.t Symbol.Tbl.t;  (** extensional, explicit *)
  externals : (Term.t list -> Term.t list list) Symbol.Tbl.t;
  mutable rules : Term.clause list;  (** reverse insertion order *)
  derived : Relation.t Symbol.Tbl.t;  (** materialized intensional *)
  mutable solved : bool;
  mutable idb_cache : Symbol.Set.t option;
  mutable nonmonotone_cache : bool option;  (** any negated literal? *)
  mutable strata_cache : Symbol.t list list option;  (** set by [solve] *)
  counters : counters;
  pub : counters;  (** values already flushed to the global registry *)
}

(* Process-wide registry series.  Hot paths bump only the engine-local
   [counters] record; [publish] flushes the diff vs. [pub] at public
   operation boundaries so per-lookup work stays a plain field update. *)
let reg = Obs.Registry.default

let g_full_solves =
  Obs.Registry.counter reg "gkbms_datalog_full_solves_total"
    ~help:"Complete from-scratch datalog materializations"

let g_incr_inserts =
  Obs.Registry.counter reg "gkbms_datalog_incr_inserts_total"
    ~help:"Fact insertions absorbed by a delta round"

let g_incr_deletes =
  Obs.Registry.counter reg "gkbms_datalog_incr_deletes_total"
    ~help:"Fact deletions absorbed by delete-rederive"

let g_fallbacks =
  Obs.Registry.counter reg "gkbms_datalog_fallbacks_total"
    ~help:"Updates that invalidated instead of patching incrementally"

let g_delta_rounds =
  Obs.Registry.counter reg "gkbms_datalog_delta_rounds_total"
    ~help:"Semi-naive / DRed rounds run incrementally"

let g_delta_tuples =
  Obs.Registry.counter reg "gkbms_datalog_delta_tuples_total"
    ~help:"Tuples moved by incremental propagation"

let g_index_hits =
  Obs.Registry.counter reg "gkbms_datalog_index_hits_total"
    ~help:"Bound-first-argument indexed lookups"

let g_index_misses =
  Obs.Registry.counter reg "gkbms_datalog_index_misses_total"
    ~help:"Full-relation scans"

let publish t =
  let c = t.counters and p = t.pub in
  let flush g cur last = if cur > last then Obs.Registry.Counter.inc ~by:(cur - last) g in
  flush g_full_solves c.c_full_solves p.c_full_solves;
  flush g_incr_inserts c.c_incr_inserts p.c_incr_inserts;
  flush g_incr_deletes c.c_incr_deletes p.c_incr_deletes;
  flush g_fallbacks c.c_fallbacks p.c_fallbacks;
  flush g_delta_rounds c.c_delta_rounds p.c_delta_rounds;
  flush g_delta_tuples c.c_delta_tuples p.c_delta_tuples;
  flush g_index_hits c.c_index_hits p.c_index_hits;
  flush g_index_misses c.c_index_misses p.c_index_misses;
  p.c_full_solves <- c.c_full_solves;
  p.c_incr_inserts <- c.c_incr_inserts;
  p.c_incr_deletes <- c.c_incr_deletes;
  p.c_fallbacks <- c.c_fallbacks;
  p.c_delta_rounds <- c.c_delta_rounds;
  p.c_delta_tuples <- c.c_delta_tuples;
  p.c_index_hits <- c.c_index_hits;
  p.c_index_misses <- c.c_index_misses

let fresh_counters () =
  {
    c_full_solves = 0;
    c_incr_inserts = 0;
    c_incr_deletes = 0;
    c_fallbacks = 0;
    c_delta_rounds = 0;
    c_delta_tuples = 0;
    c_index_hits = 0;
    c_index_misses = 0;
  }

let create () =
  {
    facts = Symbol.Tbl.create 64;
    externals = Symbol.Tbl.create 8;
    rules = [];
    derived = Symbol.Tbl.create 64;
    solved = false;
    idb_cache = None;
    nonmonotone_cache = None;
    strata_cache = None;
    counters = fresh_counters ();
    pub = fresh_counters ();
  }

let stats t =
  let c = t.counters in
  {
    full_solves = c.c_full_solves;
    incr_inserts = c.c_incr_inserts;
    incr_deletes = c.c_incr_deletes;
    fallbacks = c.c_fallbacks;
    delta_rounds = c.c_delta_rounds;
    delta_tuples = c.c_delta_tuples;
    index_hits = c.c_index_hits;
    index_misses = c.c_index_misses;
  }

let reset_stats t =
  publish t;
  let zero c =
    c.c_full_solves <- 0;
    c.c_incr_inserts <- 0;
    c.c_incr_deletes <- 0;
    c.c_fallbacks <- 0;
    c.c_delta_rounds <- 0;
    c.c_delta_tuples <- 0;
    c.c_index_hits <- 0;
    c.c_index_misses <- 0
  in
  zero t.counters;
  zero t.pub

let copy t =
  let dup_sets tbl =
    let fresh = Symbol.Tbl.create (Symbol.Tbl.length tbl) in
    Symbol.Tbl.iter
      (fun p rel ->
        let r = Relation.create () in
        Relation.iter (fun tup -> ignore (Relation.add r tup)) rel;
        Symbol.Tbl.add fresh p r)
      tbl;
    fresh
  in
  {
    facts = dup_sets t.facts;
    externals = Symbol.Tbl.copy t.externals;
    rules = t.rules;
    derived = dup_sets t.derived;
    solved = t.solved;
    idb_cache = t.idb_cache;
    nonmonotone_cache = t.nonmonotone_cache;
    strata_cache = t.strata_cache;
    counters = fresh_counters ();
    pub = fresh_counters ();
  }

(* A cheap evaluation view: shares the extensional tables and external
   relations of [t] physically (no tuple copy — at 1M facts [copy] is
   the dominant cost of spinning up a throwaway engine) but starts with
   no rules and an empty materialization.  The planner installs a
   rewritten program into the view and solves it without disturbing the
   parent.  The view must treat the shared tables as read-only: calling
   [add_fact]/[remove_fact]/[add_facts] on a view would mutate the
   parent's extensional state. *)
let derive_view t =
  {
    facts = t.facts;
    externals = t.externals;
    rules = [];
    derived = Symbol.Tbl.create 64;
    solved = false;
    idb_cache = None;
    nonmonotone_cache = None;
    strata_cache = None;
    counters = fresh_counters ();
    pub = fresh_counters ();
  }

let fact_preds t =
  Symbol.Tbl.fold
    (fun p rel acc -> if Relation.cardinal rel > 0 then p :: acc else acc)
    t.facts []
  |> List.sort Symbol.compare

let fact_count t p =
  match Symbol.Tbl.find_opt t.facts p with
  | Some r -> Relation.cardinal r
  | None -> 0

let set_of tbl p =
  match Symbol.Tbl.find_opt tbl p with
  | Some s -> s
  | None ->
    let s = Relation.create () in
    Symbol.Tbl.add tbl p s;
    s

let idb_preds t =
  match t.idb_cache with
  | Some s -> s
  | None ->
    let s =
      List.fold_left
        (fun acc (c : Term.clause) -> Symbol.Set.add c.head.pred acc)
        Symbol.Set.empty t.rules
    in
    t.idb_cache <- Some s;
    s

let is_idb t p = Symbol.Set.mem p (idb_preds t)

(* Incremental maintenance is only attempted for monotone programs:
   a negated literal makes insertions able to retract derived tuples
   (and vice versa), which a pure delta round cannot express. *)
let nonmonotone t =
  match t.nonmonotone_cache with
  | Some b -> b
  | None ->
    let b =
      List.exists
        (fun (c : Term.clause) ->
          List.exists
            (function Term.Neg _ -> true | Term.Pos _ | Term.Cmp _ -> false)
            c.body)
        t.rules
    in
    t.nonmonotone_cache <- Some b;
    b

let add_clause t (c : Term.clause) =
  if not (Term.clause_safe c) then
    Error (Format.asprintf "unsafe clause %a" Term.pp_clause c)
  else if Symbol.Tbl.mem t.externals c.head.pred then
    Error
      (Format.asprintf "head predicate %a is an external relation" Symbol.pp
         c.head.pred)
  else begin
    t.rules <- c :: t.rules;
    t.solved <- false;
    t.idb_cache <- None;
    t.nonmonotone_cache <- None;
    t.strata_cache <- None;
    Ok ()
  end

let register_external t p enum =
  Symbol.Tbl.replace t.externals p enum;
  t.solved <- false

let clauses t = List.rev t.rules

(* Stratification ------------------------------------------------------- *)

let stratify t =
  let idb = idb_preds t in
  let stratum = Symbol.Tbl.create 16 in
  Symbol.Set.iter (fun p -> Symbol.Tbl.replace stratum p 0) idb;
  let get p = match Symbol.Tbl.find_opt stratum p with Some s -> s | None -> 0 in
  let n = Symbol.Set.cardinal idb in
  let changed = ref true in
  let rounds = ref 0 in
  let result = ref (Ok ()) in
  while !changed && !result = Ok () do
    changed := false;
    incr rounds;
    List.iter
      (fun (c : Term.clause) ->
        let h = c.head.pred in
        List.iter
          (fun lit ->
            let bump required =
              if get h < required then begin
                Symbol.Tbl.replace stratum h required;
                changed := true
              end
            in
            match lit with
            | Term.Pos a when Symbol.Set.mem a.pred idb -> bump (get a.pred)
            | Term.Neg a when Symbol.Set.mem a.pred idb ->
              bump (get a.pred + 1)
            | Term.Pos _ | Term.Neg _ | Term.Cmp _ -> ())
          c.body)
      t.rules;
    if !rounds > n + 1 then
      result := Error "program is not stratifiable (negation in a cycle)"
  done;
  match !result with
  | Error e -> Error e
  | Ok () ->
    let max_stratum = Symbol.Tbl.fold (fun _ s acc -> max s acc) stratum 0 in
    let strata =
      List.init (max_stratum + 1) (fun i ->
          Symbol.Tbl.fold
            (fun p s acc -> if s = i then p :: acc else acc)
            stratum []
          |> List.sort Symbol.compare)
    in
    Ok (List.filter (fun l -> l <> []) strata)

(* Matching ------------------------------------------------------------- *)

let match_tuple (pattern : Term.t array) (tup : tuple) subst =
  let n = Array.length pattern in
  if Array.length tup <> n then None
  else
    let rec loop i subst =
      if i = n then Some subst
      else
        match Term.unify pattern.(i) tup.(i) subst with
        | Some subst -> loop (i + 1) subst
        | None -> None
    in
    loop 0 subst

(* Tuples of the relation possibly matching [pattern]: when the first
   (or, failing that, the last) argument of the pattern is ground the
   per-predicate hash index narrows the scan to one bucket. *)
let rel_lookup t (r : Relation.t) (pattern : Term.t array) =
  let n = Array.length pattern in
  if n > 0 && Term.is_ground pattern.(0) then begin
    t.counters.c_index_hits <- t.counters.c_index_hits + 1;
    Relation.find_first r pattern.(0)
  end
  else if n > 1 && Term.is_ground pattern.(n - 1) then begin
    t.counters.c_index_hits <- t.counters.c_index_hits + 1;
    Relation.find_last r pattern.(n - 1)
  end
  else begin
    t.counters.c_index_misses <- t.counters.c_index_misses + 1;
    Relation.to_list r
  end

let stored_candidates t tbl p pattern =
  match Symbol.Tbl.find_opt tbl p with
  | Some r -> rel_lookup t r pattern
  | None -> []

(* All stored tuples of predicate [p] possibly matching [pattern]:
   explicit facts, materialized tuples, and external relations. *)
let candidates t p (pattern : Term.t array) =
  let explicit = stored_candidates t t.facts p pattern in
  let derived = stored_candidates t t.derived p pattern in
  let from_external =
    match Symbol.Tbl.find_opt t.externals p with
    | Some enum -> List.map Array.of_list (enum (Array.to_list pattern))
    | None -> []
  in
  List.rev_append explicit (List.rev_append derived from_external)

let match_against tuples (a : Term.atom) subst acc =
  let pattern = Array.map (Term.Subst.apply subst) a.args in
  List.fold_left
    (fun acc tup ->
      match match_tuple pattern tup subst with
      | Some subst -> subst :: acc
      | None -> acc)
    acc tuples

let holds_ground t (a : Term.atom) =
  let pattern = a.args in
  List.exists
    (fun tup -> match_tuple pattern tup Term.Subst.empty <> None)
    (candidates t a.pred pattern)

(* Evaluate a rule body.  [lookup] maps the running index of each
   positive literal to the tuple source for that occurrence (this is
   where semi-naive evaluation injects the delta).  Negations and
   comparisons are delayed until ground — clause safety guarantees they
   eventually are.  [init] seeds the evaluation (used to rederive a
   specific head tuple by pre-binding the head variables). *)
let eval_body ?(init = [ Term.Subst.empty ]) t lookup body =
  let rec go pos_idx substs pending = function
    | [] ->
      (* discharge delayed negations / comparisons *)
      List.filter
        (fun subst ->
          List.for_all
            (fun lit ->
              match lit with
              | Term.Neg a -> not (holds_ground t (Term.Subst.apply_atom subst a))
              | Term.Cmp (op, l, r) -> (
                match
                  Term.eval_cmp op (Term.Subst.apply subst l)
                    (Term.Subst.apply subst r)
                with
                | Some b -> b
                | None -> false)
              | Term.Pos _ -> true)
            pending)
        substs
    | Term.Pos a :: rest ->
      let substs =
        List.fold_left
          (fun acc subst ->
            let pattern = Array.map (Term.Subst.apply subst) a.args in
            match_against (lookup pos_idx a.pred pattern) a subst acc)
          [] substs
      in
      if substs = [] then [] else go (pos_idx + 1) substs pending rest
    | Term.Neg a :: rest ->
      let ready, delayed =
        List.partition
          (fun subst -> Term.atom_ground (Term.Subst.apply_atom subst a))
          substs
      in
      let survivors =
        List.filter
          (fun subst -> not (holds_ground t (Term.Subst.apply_atom subst a)))
          ready
      in
      let pending =
        if delayed = [] then pending else Term.Neg a :: pending
      in
      go pos_idx (survivors @ delayed) pending rest
    | Term.Cmp (op, l, r) :: rest ->
      let keep, delay =
        List.fold_left
          (fun (keep, delay) subst ->
            match
              Term.eval_cmp op (Term.Subst.apply subst l)
                (Term.Subst.apply subst r)
            with
            | Some true -> (subst :: keep, delay)
            | Some false -> (keep, delay)
            | None -> (keep, subst :: delay))
          ([], []) substs
      in
      let pending = if delay = [] then pending else Term.Cmp (op, l, r) :: pending in
      go pos_idx (keep @ delay) pending rest
  in
  go 0 init [] body

let head_tuples (c : Term.clause) substs =
  List.filter_map
    (fun subst ->
      let inst = Term.Subst.apply_atom subst c.head in
      if Term.atom_ground inst then Some inst.args else None)
    substs

let full_lookup t _idx p pattern = candidates t p pattern

(* Positions (indexes among the positive body literals) paired with
   their predicates; the unit of semi-naive delta focusing. *)
let positive_positions (c : Term.clause) =
  List.filter_map
    (function
      | Term.Pos a -> Some a.Term.pred
      | Term.Neg _ | Term.Cmp _ -> None)
    c.body
  |> List.mapi (fun i p -> (i, p))

(* [c.body] reordered so the [focus]-th positive literal leads: its
   (ground) delta tuples then bind variables for the remaining joins,
   which can use the argument indexes instead of scanning.  Safe: join
   order is irrelevant for positive literals, and any Neg/Cmp literal
   keeps its relative position, so it is evaluated under at least the
   bindings it would have seen in the original order. *)
let focused_body (c : Term.clause) focus =
  let rec split i acc = function
    | [] -> c.body (* focus out of range: leave untouched *)
    | (Term.Pos _ as lit) :: rest when i = focus -> lit :: List.rev_append acc rest
    | (Term.Pos _ as lit) :: rest -> split (i + 1) (lit :: acc) rest
    | lit :: rest -> split i (lit :: acc) rest
  in
  split 0 [] c.body

let stratum_rules_of t stratum_preds =
  List.filter
    (fun (c : Term.clause) ->
      List.exists (Symbol.equal c.head.pred) stratum_preds)
    (clauses t)

(* Delta tables: predicate -> relation of tuples new in this round. *)

let delta_create () : Relation.t Symbol.Tbl.t = Symbol.Tbl.create 8

let delta_set (d : Relation.t Symbol.Tbl.t) p =
  match Symbol.Tbl.find_opt d p with
  | Some s -> s
  | None ->
    let s = Relation.create () in
    Symbol.Tbl.add d p s;
    s

let delta_nonempty (d : Relation.t Symbol.Tbl.t) =
  Symbol.Tbl.fold (fun _ s acc -> acc || Relation.cardinal s > 0) d false

let delta_mem (d : Relation.t Symbol.Tbl.t) p =
  match Symbol.Tbl.find_opt d p with
  | Some s -> Relation.cardinal s > 0
  | None -> false

let delta_lookup t (d : Relation.t Symbol.Tbl.t) p pattern =
  match Symbol.Tbl.find_opt d p with
  | Some r -> rel_lookup t r pattern
  | None -> []

let delta_copy d =
  let fresh = delta_create () in
  Symbol.Tbl.iter
    (fun p r ->
      let s = delta_set fresh p in
      Relation.iter (fun tup -> ignore (Relation.add s tup)) r)
    d;
  fresh

(* Full evaluation ------------------------------------------------------- *)

let eval_stratum_naive t stratum_rules =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (c : Term.clause) ->
        let substs = eval_body t (full_lookup t) c.body in
        List.iter
          (fun tup ->
            if Relation.add (set_of t.derived c.head.pred) tup then
              changed := true)
          (head_tuples c substs))
      stratum_rules
  done

let eval_stratum_seminaive t stratum_preds stratum_rules =
  let in_stratum p = List.exists (Symbol.equal p) stratum_preds in
  (* round 0: full evaluation of every rule once *)
  let delta = ref (delta_create ()) in
  List.iter
    (fun (c : Term.clause) ->
      let substs = eval_body t (full_lookup t) c.body in
      List.iter
        (fun tup ->
          if Relation.add (set_of t.derived c.head.pred) tup then
            ignore (Relation.add (delta_set !delta c.head.pred) tup))
        (head_tuples c substs))
    stratum_rules;
  (* iterate: each round focuses one same-stratum positive literal on the
     previous round's delta *)
  while delta_nonempty !delta do
    let next = delta_create () in
    List.iter
      (fun (c : Term.clause) ->
        let recursive_positions =
          List.filter (fun (_, p) -> in_stratum p) (positive_positions c)
          |> List.map fst
        in
        List.iter
          (fun focus ->
            let lookup idx p pattern =
              if idx = 0 then delta_lookup t !delta p pattern
              else candidates t p pattern
            in
            let substs = eval_body t lookup (focused_body c focus) in
            List.iter
              (fun tup ->
                if Relation.add (set_of t.derived c.head.pred) tup then
                  ignore (Relation.add (delta_set next c.head.pred) tup))
              (head_tuples c substs))
          recursive_positions)
      stratum_rules;
    delta := next
  done

(* Parallel semi-naive: the per-(rule, focus) delta joins of one round
   are independent reads, so they run on pool domains against a shim of
   [t] (shared fact/derived tables, private counters); each job returns
   its head tuples and the coordinator merges them into [t.derived] and
   the next delta sequentially, in job order.  Compared to the
   sequential loop above, a rule no longer sees tuples derived by
   earlier rules of the *same* round — those tuples are in the round's
   delta, and every same-stratum body position is a recursive focus, so
   the next round derives exactly the missed consequences: the fixpoint
   is identical, at worst one extra round.  Negated predicates are in
   lower (complete) strata by stratification, so deferral never changes
   a negation's outcome.  External relations must be safe to call from
   several domains (the Cml bridge reads only the store). *)
let eval_stratum_seminaive_par ~pool t stratum_preds stratum_rules =
  let in_stratum p = List.exists (Symbol.equal p) stratum_preds in
  let shim () = { t with counters = fresh_counters (); pub = fresh_counters () } in
  let absorb (c : counters) =
    t.counters.c_index_hits <- t.counters.c_index_hits + c.c_index_hits;
    t.counters.c_index_misses <- t.counters.c_index_misses + c.c_index_misses
  in
  let merge delta results =
    List.iter
      (fun (p, tups, ctrs) ->
        absorb ctrs;
        List.iter
          (fun tup ->
            if Relation.add (set_of t.derived p) tup then
              ignore (Relation.add (delta_set delta p) tup))
          tups)
      results
  in
  let delta = ref (delta_create ()) in
  Par.Pool.map_list ~pool
    (fun (c : Term.clause) ->
      let sh = shim () in
      let substs = eval_body sh (full_lookup sh) c.body in
      (c.head.pred, head_tuples c substs, sh.counters))
    stratum_rules
  |> merge !delta;
  let jobs =
    List.concat_map
      (fun (c : Term.clause) ->
        positive_positions c
        |> List.filter (fun (_, p) -> in_stratum p)
        |> List.map (fun (focus, _) -> (c, focus)))
      stratum_rules
  in
  while delta_nonempty !delta do
    let d = !delta in
    let results =
      Par.Pool.map_list ~pool
        (fun ((c : Term.clause), focus) ->
          let sh = shim () in
          let lookup idx p pattern =
            if idx = 0 then delta_lookup sh d p pattern
            else candidates sh p pattern
          in
          let substs = eval_body sh lookup (focused_body c focus) in
          (c.head.pred, head_tuples c substs, sh.counters))
        jobs
    in
    let next = delta_create () in
    merge next results;
    delta := next
  done

let invalidate t =
  Symbol.Tbl.reset t.derived;
  t.solved <- false

let solve ?(strategy = `Seminaive) ?pool t =
  (* the parallel path only engages on a real multi-domain pool from
     outside a pool task; otherwise the pre-parallel code runs verbatim *)
  let pool =
    match pool with
    | Some p when Par.Pool.size p > 1 && not (Par.Pool.in_worker ()) -> Some p
    | Some _ | None -> None
  in
  if t.solved then Ok ()
  else
    let r =
      match stratify t with
      | Error e -> Error e
      | Ok strata ->
        Symbol.Tbl.reset t.derived;
        List.iter
          (fun stratum_preds ->
            let stratum_rules = stratum_rules_of t stratum_preds in
            match (strategy, pool) with
            | `Naive, _ -> eval_stratum_naive t stratum_rules
            | `Seminaive, Some pool ->
              eval_stratum_seminaive_par ~pool t stratum_preds stratum_rules
            | `Seminaive, None ->
              eval_stratum_seminaive t stratum_preds stratum_rules)
          strata;
        t.strata_cache <- Some strata;
        t.solved <- true;
        t.counters.c_full_solves <- t.counters.c_full_solves + 1;
        Ok ()
    in
    publish t;
    r

(* Incremental insertion ------------------------------------------------- *)

(* Semi-naive propagation of already-inserted [seeds] through the given
   strata.  New head tuples are added to [t.derived]; the accumulated
   delta of one stratum feeds the rules of the higher strata. *)
let propagate_insertions t seeds strata =
  let acc = delta_create () in
  List.iter (fun (p, tup) -> ignore (Relation.add (delta_set acc p) tup)) seeds;
  List.iter
    (fun stratum_preds ->
      let stratum_rules = stratum_rules_of t stratum_preds in
      if stratum_rules <> [] then begin
        let cur = ref (delta_copy acc) in
        while delta_nonempty !cur do
          t.counters.c_delta_rounds <- t.counters.c_delta_rounds + 1;
          let next = delta_create () in
          List.iter
            (fun (c : Term.clause) ->
              List.iter
                (fun (focus, p) ->
                  if delta_mem !cur p then begin
                    let lookup idx q pattern =
                      if idx = 0 then delta_lookup t !cur q pattern
                      else candidates t q pattern
                    in
                    let substs = eval_body t lookup (focused_body c focus) in
                    List.iter
                      (fun tup ->
                        if Relation.add (set_of t.derived c.head.pred) tup
                        then begin
                          ignore (Relation.add (delta_set next c.head.pred) tup);
                          ignore (Relation.add (delta_set acc c.head.pred) tup);
                          t.counters.c_delta_tuples <-
                            t.counters.c_delta_tuples + 1
                        end)
                      (head_tuples c substs)
                  end)
                (positive_positions c))
            stratum_rules;
          cur := next
        done
      end)
    strata

let add_fact t (a : Term.atom) =
  if not (Term.atom_ground a) then
    Error (Format.asprintf "non-ground fact %a" Term.pp_atom a)
  else begin
    let rel = set_of t.facts a.pred in
    if Relation.mem rel a.args then Ok () (* duplicate: nothing to do *)
    else begin
      ignore (Relation.add rel a.args);
      (match (t.solved, t.strata_cache) with
      | true, Some strata when not (nonmonotone t) ->
        (* one delta round instead of re-solving from scratch *)
        t.counters.c_incr_inserts <- t.counters.c_incr_inserts + 1;
        propagate_insertions t [ (a.pred, a.args) ] strata
      | true, _ ->
        t.counters.c_fallbacks <- t.counters.c_fallbacks + 1;
        t.solved <- false
      | false, _ -> ());
      publish t;
      Ok ()
    end
  end

let add_facts t (atoms : Term.atom list) =
  match List.find_opt (fun a -> not (Term.atom_ground a)) atoms with
  | Some a -> Error (Format.asprintf "non-ground fact %a" Term.pp_atom a)
  | None ->
    (* Stage every new tuple first, then run ONE delta round over the
       whole batch — loading n facts costs one propagation instead of
       n (the semi-naive round already takes a seed list). *)
    let seeds =
      List.filter
        (fun (a : Term.atom) -> Relation.add (set_of t.facts a.pred) a.args)
        atoms
    in
    (if seeds <> [] then begin
       (match (t.solved, t.strata_cache) with
       | true, Some strata when not (nonmonotone t) ->
         t.counters.c_incr_inserts <- t.counters.c_incr_inserts + 1;
         propagate_insertions t
           (List.map (fun (a : Term.atom) -> (a.pred, a.args)) seeds)
           strata
       | true, _ ->
         t.counters.c_fallbacks <- t.counters.c_fallbacks + 1;
         t.solved <- false
       | false, _ -> ());
       publish t
     end);
    Ok ()

(* Incremental deletion (delete-rederive) -------------------------------- *)

(* Is there still a derivation of head tuple [tup] of [p] from the
   current database?  Pre-binds the head with the tuple and evaluates
   each rule body against the stored relations. *)
let rederivable t p (tup : tuple) =
  List.exists
    (fun (c : Term.clause) ->
      Symbol.equal c.head.pred p
      &&
      match
        Term.unify_atoms c.head
          { Term.pred = p; args = tup }
          Term.Subst.empty
      with
      | None -> false
      | Some subst -> eval_body ~init:[ subst ] t (full_lookup t) c.body <> [])
    t.rules

(* DRed, stratum by stratum: over-delete everything with a derivation
   through a deleted tuple (other body positions see the pre-deletion
   database, i.e. current ∪ deleted), then put back and re-propagate the
   tuples that still have an independent derivation. *)
let propagate_deletions t seeds strata =
  (* The lookups below (and especially the per-tuple body probes of
     [rederivable]) are maintenance work, not query answering: a
     retraction storm would otherwise swamp the hit/miss ratio with
     thousands of internal probes and make the steady-state index
     statistics meaningless.  Snapshot the two counters and restore them
     on exit; the delta counters ([delta_rounds]/[delta_tuples]) keep
     counting, they genuinely describe DRed work. *)
  let h0 = t.counters.c_index_hits and m0 = t.counters.c_index_misses in
  Fun.protect ~finally:(fun () ->
      t.counters.c_index_hits <- h0;
      t.counters.c_index_misses <- m0)
  @@ fun () ->
  let deleted = delta_create () in
  List.iter
    (fun (p, tup) -> ignore (Relation.add (delta_set deleted p) tup))
    seeds;
  List.iter
    (fun stratum_preds ->
      let stratum_rules = stratum_rules_of t stratum_preds in
      if stratum_rules <> [] then begin
        (* phase 1: over-delete *)
        let del_s = delta_create () in
        let cur = ref (delta_copy deleted) in
        while delta_nonempty !cur do
          t.counters.c_delta_rounds <- t.counters.c_delta_rounds + 1;
          let next = delta_create () in
          List.iter
            (fun (c : Term.clause) ->
              List.iter
                (fun (focus, p) ->
                  if delta_mem !cur p then begin
                    let lookup idx q pattern =
                      if idx = 0 then delta_lookup t !cur q pattern
                      else
                        List.rev_append
                          (delta_lookup t deleted q pattern)
                          (candidates t q pattern)
                    in
                    let substs = eval_body t lookup (focused_body c focus) in
                    List.iter
                      (fun tup ->
                        match Symbol.Tbl.find_opt t.derived c.head.pred with
                        | Some rel when Relation.remove rel tup ->
                          ignore
                            (Relation.add (delta_set deleted c.head.pred) tup);
                          ignore
                            (Relation.add (delta_set del_s c.head.pred) tup);
                          ignore
                            (Relation.add (delta_set next c.head.pred) tup);
                          t.counters.c_delta_tuples <-
                            t.counters.c_delta_tuples + 1
                        | Some _ | None -> ())
                      (head_tuples c substs)
                  end)
                (positive_positions c))
            stratum_rules;
          cur := next
        done;
        (* phase 2: rederive over-deleted tuples that survive *)
        let survivors = ref [] in
        Symbol.Tbl.iter
          (fun p rel ->
            Relation.iter
              (fun tup ->
                if rederivable t p tup then survivors := (p, tup) :: !survivors)
              rel)
          del_s;
        List.iter
          (fun (p, tup) -> ignore (Relation.add (set_of t.derived p) tup))
          !survivors;
        if !survivors <> [] then
          propagate_insertions t !survivors [ stratum_preds ];
        (* anything back in [derived] is no longer deleted: later strata
           must not propagate its removal *)
        Symbol.Tbl.iter
          (fun p rel ->
            Relation.iter
              (fun tup ->
                match Symbol.Tbl.find_opt t.derived p with
                | Some d when Relation.mem d tup ->
                  ignore (Relation.remove (delta_set deleted p) tup)
                | Some _ | None -> ())
              rel)
          del_s
      end)
    strata

let remove_fact t (a : Term.atom) =
  if not (Term.atom_ground a) then
    Error (Format.asprintf "non-ground fact %a" Term.pp_atom a)
  else begin
    (match Symbol.Tbl.find_opt t.facts a.pred with
    | None -> ()
    | Some rel ->
      if Relation.remove rel a.args then (
        match (t.solved, t.strata_cache) with
        | true, Some strata when not (nonmonotone t) ->
          t.counters.c_incr_deletes <- t.counters.c_incr_deletes + 1;
          propagate_deletions t [ (a.pred, a.args) ] strata
        | true, _ ->
          t.counters.c_fallbacks <- t.counters.c_fallbacks + 1;
          t.solved <- false
        | false, _ -> ()));
    publish t;
    Ok ()
  end

let facts_of t p =
  let explicit =
    match Symbol.Tbl.find_opt t.facts p with
    | Some s -> Relation.to_list s
    | None -> []
  in
  let derived =
    match Symbol.Tbl.find_opt t.derived p with
    | Some s -> Relation.to_list s
    | None -> []
  in
  List.map Array.to_list (List.rev_append explicit derived)

let match_atom t (a : Term.atom) subst =
  let pattern = Array.map (Term.Subst.apply subst) a.args in
  match_against (candidates t a.pred pattern) a subst []

let query ?strategy ?pool t a =
  match solve ?strategy ?pool t with
  | Error e -> Error e
  | Ok () ->
    let r = match_atom t a Term.Subst.empty in
    publish t;
    Ok r

let derived_count t =
  Symbol.Tbl.fold (fun _ s acc -> acc + Relation.cardinal s) t.derived 0
