(** Top-down inference engine — the stand-in for the paper's "Prolog
    prover with some enhancements concerning negation".

    Two modes:
    - plain SLD resolution (depth-first, depth-bounded), and
    - tabled evaluation ("the inference engines may enhance their
      performance by lemma generation"): answers to subgoals are cached
      in a lemma table and reused, which also makes left-recursive
      Datalog terminate.

    The prover runs against a {!Datalog.t} program without materializing
    it, so queries touch only the relevant part of the KB. *)


type stats = { mutable resolutions : int; mutable lemma_hits : int }

type t

val make : ?tabling:bool -> ?max_depth:int -> Datalog.t -> t
(** [max_depth] (default 512) bounds plain SLD recursion; tabled
    evaluation ignores it. *)

val solve : t -> Term.atom list -> Term.Subst.t list
(** All answer substitutions for the conjunctive goal (restricted to the
    goal's variables).  Duplicates are collapsed. *)

val prove : t -> Term.atom list -> bool

val copy : t -> t
(** An independent prover over the same program: the lemma table is
    duplicated (answer sets and all) and the stats counters are fresh
    copies, so work done in either prover is invisible to the other. *)

val stats : t -> stats
(** A snapshot of the counters.  Mutating the returned record does not
    affect the prover (and snapshots taken from copies are likewise
    independent). *)

val lemma_count : t -> int
(** Number of lemmas (cached subgoal answers) generated so far. *)

val clear_lemmas : t -> unit
