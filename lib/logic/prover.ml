open Kernel

type stats = { mutable resolutions : int; mutable lemma_hits : int }

module Atom_tbl = Hashtbl.Make (struct
  type t = Term.atom

  let equal = Term.atom_equal
  let hash (a : Term.atom) = Hashtbl.hash (Symbol.hash a.pred, a.args)
end)

type t = {
  program : Datalog.t;
  tabling : bool;
  max_depth : int;
  idb : Symbol.Set.t;
  (* lemma table: canonical subgoal -> ground answer tuples *)
  table : (Term.t array, unit) Hashtbl.t Atom_tbl.t;
  active : unit Atom_tbl.t;  (** canonical subgoals under evaluation *)
  mutable dirty : bool;  (** a goal was activated mid-fixpoint *)
  stats : stats;
  pub : stats;  (** values already flushed to the global registry *)
  mutable fresh : int;
}

let g_resolutions =
  Obs.Registry.counter Obs.Registry.default "gkbms_prover_resolutions_total"
    ~help:"SLD / tabled resolution steps"

let g_lemma_hits =
  Obs.Registry.counter Obs.Registry.default "gkbms_prover_lemma_hits_total"
    ~help:"Subgoal answers served from the lemma table"

(* Resolution counting sits on the unification hot path, so the engine
   bumps plain record fields and the diff is flushed here, at the end of
   each public [solve]/[prove]. *)
let publish t =
  if t.stats.resolutions > t.pub.resolutions then
    Obs.Registry.Counter.inc g_resolutions
      ~by:(t.stats.resolutions - t.pub.resolutions);
  if t.stats.lemma_hits > t.pub.lemma_hits then
    Obs.Registry.Counter.inc g_lemma_hits
      ~by:(t.stats.lemma_hits - t.pub.lemma_hits);
  t.pub.resolutions <- t.stats.resolutions;
  t.pub.lemma_hits <- t.stats.lemma_hits

let make ?(tabling = true) ?(max_depth = 512) program =
  let idb =
    List.fold_left
      (fun acc (c : Term.clause) -> Symbol.Set.add c.head.pred acc)
      Symbol.Set.empty (Datalog.clauses program)
  in
  {
    program;
    tabling;
    max_depth;
    idb;
    table = Atom_tbl.create 256;
    active = Atom_tbl.create 256;
    dirty = false;
    stats = { resolutions = 0; lemma_hits = 0 };
    pub = { resolutions = 0; lemma_hits = 0 };
    fresh = 0;
  }

(* A snapshot, not the live record: handing out the internal mutable
   record would let two provers (or a caller) alias each other's
   counters — the copy-derived prover bug. *)
let stats t =
  { resolutions = t.stats.resolutions; lemma_hits = t.stats.lemma_hits }

let copy t =
  let table = Atom_tbl.create (Atom_tbl.length t.table) in
  Atom_tbl.iter (fun g set -> Atom_tbl.add table g (Hashtbl.copy set)) t.table;
  {
    t with
    table;
    active = Atom_tbl.copy t.active;
    stats = { resolutions = t.stats.resolutions; lemma_hits = t.stats.lemma_hits };
    pub = { resolutions = t.stats.resolutions; lemma_hits = t.stats.lemma_hits };
  }

let lemma_count t = Atom_tbl.length t.table

let clear_lemmas t =
  Atom_tbl.reset t.table;
  Atom_tbl.reset t.active

(* Canonical renaming: variables become V0, V1, ... in order of first
   occurrence, so equal-up-to-renaming subgoals share one lemma entry. *)
let canonicalize (a : Term.atom) =
  let mapping = Hashtbl.create 8 in
  let counter = ref 0 in
  let args =
    Array.map
      (fun t ->
        match t with
        | Term.Var v -> (
          match Hashtbl.find_opt mapping v with
          | Some t' -> t'
          | None ->
            let t' = Term.Var (Printf.sprintf "V%d" !counter) in
            incr counter;
            Hashtbl.add mapping v t';
            t')
        | Term.Sym _ | Term.Int _ -> t)
      a.Term.args
  in
  { a with Term.args }

let is_idb t p = Symbol.Set.mem p t.idb

let clauses_for t p =
  List.filter
    (fun (c : Term.clause) -> Symbol.equal c.head.pred p)
    (Datalog.clauses t.program)

(* ------------------------------------------------------------------ *)
(* Tabled evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let table_entry t goal =
  match Atom_tbl.find_opt t.table goal with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 16 in
    Atom_tbl.add t.table goal set;
    set

let activate t (goal : Term.atom) =
  let g = canonicalize goal in
  if not (Atom_tbl.mem t.active g) then begin
    Atom_tbl.add t.active g ();
    ignore (table_entry t g);
    t.dirty <- true
  end;
  g

(* One global fixpoint over every active subgoal.  Evaluating a clause
   body may activate further subgoals (setting [dirty]), which the loop
   then picks up; answers grow monotonically, so the loop terminates on
   function-free programs. *)
let rec run_fixpoint t =
  let changed = ref true in
  while !changed || t.dirty do
    t.dirty <- false;
    changed := false;
    let goals = Atom_tbl.fold (fun g () acc -> g :: acc) t.active [] in
    List.iter
      (fun (g : Term.atom) ->
        let set = table_entry t g in
        List.iter
          (fun (c : Term.clause) ->
            t.fresh <- t.fresh + 1;
            let c = Term.rename_clause t.fresh c in
            match Term.unify_atoms c.head g Term.Subst.empty with
            | None -> ()
            | Some subst ->
              t.stats.resolutions <- t.stats.resolutions + 1;
              let substs = eval_body_tabled t subst c.body in
              List.iter
                (fun subst ->
                  let inst = Term.Subst.apply_atom subst g in
                  if Term.atom_ground inst && not (Hashtbl.mem set inst.args)
                  then begin
                    Hashtbl.add set inst.args ();
                    changed := true
                  end)
                substs)
          (clauses_for t g.pred))
      goals
  done

and tabled_answers t (goal : Term.atom) : Term.t array list =
  let g = activate t goal in
  run_fixpoint t;
  let set = table_entry t g in
  Hashtbl.fold (fun tup () acc -> tup :: acc) set []

and eval_body_tabled t subst body =
  let rec go substs pending = function
    | [] ->
      List.filter
        (fun subst ->
          List.for_all
            (fun lit ->
              match lit with
              | Term.Neg a ->
                not (ground_holds_tabled t (Term.Subst.apply_atom subst a))
              | Term.Cmp (op, l, r) -> (
                match
                  Term.eval_cmp op (Term.Subst.apply subst l)
                    (Term.Subst.apply subst r)
                with
                | Some b -> b
                | None -> false)
              | Term.Pos _ -> true)
            pending)
        substs
    | Term.Pos a :: rest ->
      let substs =
        List.concat_map
          (fun subst ->
            let inst = Term.Subst.apply_atom subst a in
            let tuples =
              if is_idb t inst.pred then begin
                let canon = activate t inst in
                let set = table_entry t canon in
                t.stats.lemma_hits <- t.stats.lemma_hits + 1;
                Hashtbl.fold (fun tup () acc -> tup :: acc) set []
              end
              else
                List.map
                  (fun s ->
                    (Term.Subst.apply_atom s inst).Term.args)
                  (Datalog.match_atom t.program inst Term.Subst.empty)
            in
            List.filter_map
              (fun tup ->
                let n = Array.length inst.args in
                if Array.length tup <> n then None
                else
                  let rec loop i subst =
                    if i = n then Some subst
                    else
                      match Term.unify inst.args.(i) tup.(i) subst with
                      | Some subst -> loop (i + 1) subst
                      | None -> None
                  in
                  loop 0 subst)
              tuples)
          substs
      in
      if substs = [] then [] else go substs pending rest
    | (Term.Neg _ as lit) :: rest | (Term.Cmp _ as lit) :: rest ->
      go substs (lit :: pending) rest
  in
  go [ subst ] [] body

and ground_holds_tabled t (a : Term.atom) =
  if is_idb t a.pred then begin
    (* run the negated subgoal to completion in an isolated sub-prover:
       stratification guarantees it does not depend on the goals still
       in flight in [t], so its fixpoint is final *)
    let sub = make ~tabling:true ~max_depth:t.max_depth t.program in
    let answers = tabled_answers sub a in
    t.stats.resolutions <- t.stats.resolutions + sub.stats.resolutions;
    List.exists (fun tup -> tup = a.args) answers
  end
  else Datalog.match_atom t.program a Term.Subst.empty <> []

(* ------------------------------------------------------------------ *)
(* Plain SLD                                                           *)
(* ------------------------------------------------------------------ *)

exception Depth_exceeded

let rec sld t depth subst (goals : Term.literal list) k =
  if depth > t.max_depth then raise Depth_exceeded;
  match goals with
  | [] -> k subst
  | Term.Pos a :: rest ->
    let inst = Term.Subst.apply_atom subst a in
    (* stored facts *)
    List.iter
      (fun subst' -> sld t (depth + 1) subst' rest k)
      (Datalog.match_atom t.program inst subst);
    (* rules *)
    if is_idb t inst.pred then
      List.iter
        (fun (c : Term.clause) ->
          t.fresh <- t.fresh + 1;
          let c = Term.rename_clause t.fresh c in
          match Term.unify_atoms c.head inst subst with
          | None -> ()
          | Some subst' ->
            t.stats.resolutions <- t.stats.resolutions + 1;
            sld t (depth + 1) subst' (c.body @ rest) k)
        (clauses_for t inst.pred)
  | Term.Neg a :: rest ->
    let inst = Term.Subst.apply_atom subst a in
    if Term.atom_ground inst then begin
      let found = ref false in
      (try sld t (depth + 1) subst [ Term.Pos inst ] (fun _ -> found := true; raise Exit)
       with Exit -> ());
      if not !found then sld t (depth + 1) subst rest k
    end
    else if rest = [] then () (* floundering: unresolvable non-ground negation *)
    else sld t depth subst (rest @ [ Term.Neg a ]) k
  | Term.Cmp (op, l, r) :: rest -> (
    match
      Term.eval_cmp op (Term.Subst.apply subst l) (Term.Subst.apply subst r)
    with
    | Some true -> sld t depth subst rest k
    | Some false -> ()
    | None ->
      if rest = [] then ()
      else sld t depth subst (rest @ [ Term.Cmp (op, l, r) ]) k)

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

let restrict_to_goal_vars (goal_atoms : Term.atom list) subst =
  let vars =
    List.sort_uniq String.compare (List.concat_map Term.atom_vars goal_atoms)
  in
  List.fold_left
    (fun acc v ->
      match Term.Subst.lookup v subst with
      | Some _ ->
        Term.Subst.bind v (Term.Subst.apply subst (Term.Var v)) acc
      | None -> acc)
    Term.Subst.empty vars

let dedup_substs substs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      let key = List.map (fun (v, t) -> (v, t)) (Term.Subst.to_list s) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    substs

let solve_tabled t goal_atoms =
  (* conjunction: evaluate left-to-right, joining answers *)
  let rec go substs = function
    | [] -> substs
    | a :: rest ->
      let substs =
        List.concat_map
          (fun subst ->
            let inst = Term.Subst.apply_atom subst a in
            let tuples =
              if is_idb t inst.pred then tabled_answers t inst
              else
                List.map
                  (fun s -> (Term.Subst.apply_atom s inst).Term.args)
                  (Datalog.match_atom t.program inst Term.Subst.empty)
            in
            List.filter_map
              (fun tup ->
                let n = Array.length inst.args in
                if Array.length tup <> n then None
                else
                  let rec loop i subst =
                    if i = n then Some subst
                    else
                      match Term.unify inst.args.(i) tup.(i) subst with
                      | Some subst -> loop (i + 1) subst
                      | None -> None
                  in
                  loop 0 subst)
              tuples)
          substs
      in
      go substs rest
  in
  go [ Term.Subst.empty ] goal_atoms

let solve t goal_atoms =
  let raw =
    if t.tabling then solve_tabled t goal_atoms
    else begin
      let acc = ref [] in
      (try
         sld t 0 Term.Subst.empty
           (List.map (fun a -> Term.Pos a) goal_atoms)
           (fun subst -> acc := subst :: !acc)
       with Depth_exceeded -> ());
      !acc
    end
  in
  let r = dedup_substs (List.map (restrict_to_goal_vars goal_atoms) raw) in
  publish t;
  r

let prove t goal_atoms = solve t goal_atoms <> []
