(** Deductive database engine: stratified Datalog with negation,
    comparisons, and pluggable extensional relations.

    The object processor "understands the knowledge base as a deductive
    relational database"; this module is that view.  Extensional
    predicates may be backed by explicit facts or by external relations —
    in the GKBMS the proposition base registers [prop/5], [instanceof/2]
    etc. as externals so rules deduce directly over stored propositions. *)

open Kernel

type t

type strategy = [ `Naive | `Seminaive ]

val create : unit -> t
val copy : t -> t

val derive_view : t -> t
(** A throwaway evaluation view over [t]'s extensional state: shares the
    stored fact tables and external relations physically (no copy) but
    has no rules and an empty materialization.  Install a (rewritten)
    program with {!add_clause} and {!solve} it without touching the
    parent.  The shared tables are read-only through the view: never
    call {!add_fact}/{!add_facts}/{!remove_fact} on a view. *)

val fact_preds : t -> Symbol.t list
(** Predicates with at least one explicitly stored fact (sorted; does
    not include external relations). *)

val fact_count : t -> Symbol.t -> int
(** Number of explicitly stored facts of a predicate (0 for externals
    and unknown predicates). *)

val add_fact : t -> Term.atom -> (unit, string) result
(** Ground atoms only.  Duplicate facts are ignored.  On a solved,
    negation-free engine the new fact is propagated with one semi-naive
    delta round and the engine stays solved; otherwise the
    materialization is invalidated. *)

val add_facts : t -> Term.atom list -> (unit, string) result
(** Batch {!add_fact}: stages every tuple, then propagates the whole
    batch with a single semi-naive delta round (or one invalidation).
    Loading n facts costs one propagation instead of n.  Fails on the
    first non-ground atom, in which case nothing is added. *)

val remove_fact : t -> Term.atom -> (unit, string) result
(** Ground atoms only.  Removing an absent fact is a no-op.  On a
    solved, negation-free engine derived consequences are retracted by
    delete-rederive (DRed) per stratum and the engine stays solved;
    otherwise the materialization is invalidated. *)

val add_clause : t -> Term.clause -> (unit, string) result
(** Rejects unsafe clauses (see {!Term.clause_safe}) and clauses whose
    head predicate is extensional. *)

val register_external : t -> Symbol.t -> (Term.t list -> Term.t list list) -> unit
(** [register_external t p enum]: [enum pattern] must return every stored
    ground tuple of [p] matching the pattern (argument list possibly
    containing variables, which match anything).  Registering [p] makes
    it extensional. *)

val clauses : t -> Term.clause list
val is_idb : t -> Symbol.t -> bool

val stratify : t -> (Symbol.t list list, string) result
(** Strata of intensional predicates, lowest first.  [Error] if a
    negation occurs in a recursive cycle. *)

val solve : ?strategy:strategy -> ?pool:Par.Pool.t -> t -> (unit, string) result
(** Materialize all intensional predicates (bottom-up).  Idempotent until
    the next [add_fact]/[add_clause].

    With [?pool] (of size > 1) the per-rule delta joins of each
    semi-naive round are evaluated on the pool's domains; derived
    tuples are still merged into the tables sequentially by the
    caller's domain, and the materialized result is the same fixpoint.
    External relations are then called from several domains and must be
    read-only or otherwise domain-safe.  Without a pool (or with a
    sequential one) the evaluation is exactly the single-domain code. *)

val facts_of : t -> Symbol.t -> Term.t list list
(** All currently materialized (or stored extensional) tuples of a
    predicate; call {!solve} first for intensional ones.  Does not
    include external relations (which cannot be enumerated without a
    pattern — pass one via {!match_atom}). *)

val match_atom : t -> Term.atom -> Term.Subst.t -> Term.Subst.t list
(** All extensions of the substitution matching the atom against stored
    facts, materialized facts and external relations. *)

val query :
  ?strategy:strategy ->
  ?pool:Par.Pool.t ->
  t ->
  Term.atom ->
  (Term.Subst.t list, string) result
(** [solve] then [match_atom] with the empty substitution. *)

val derived_count : t -> int
(** Number of materialized intensional tuples (bench metric). *)

val invalidate : t -> unit
(** Drop materialized results (forces the next [solve] to recompute). *)

(** {1 Instrumentation} *)

type stats = {
  full_solves : int;  (** complete from-scratch materializations *)
  incr_inserts : int;  (** fact insertions absorbed by a delta round *)
  incr_deletes : int;  (** fact deletions absorbed by delete-rederive *)
  fallbacks : int;  (** updates on a solved engine that invalidated *)
  delta_rounds : int;  (** semi-naive / DRed rounds run incrementally *)
  delta_tuples : int;  (** tuples moved by incremental propagation *)
  index_hits : int;  (** bound-first-argument indexed lookups *)
  index_misses : int;  (** full-relation scans *)
}

val stats : t -> stats
(** Counters since creation (or the last {!reset_stats}); [copy] starts
    from zero. *)

val reset_stats : t -> unit
