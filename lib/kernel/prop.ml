type id = Symbol.t

type t = {
  id : id;
  source : id;
  label : Symbol.t;
  dest : id;
  time : Time.t;
  belief : Time.point;
}

let make ?(time = Time.always) ?belief ~id ~source ~label ~dest () =
  let belief = match belief with Some b -> b | None -> Time.Clock.now () in
  { id; source; label; dest; time; belief }

let individual ?time x = make ?time ~id:x ~source:x ~label:x ~dest:x ()
let is_individual p = p.source = p.id && p.dest = p.id && p.label = p.id

(* Atomic: decisions execute on pool domains, and two domains drawing
   the same counter value would silently alias distinct propositions. *)
let id_counter = Atomic.make 0

let fresh_id ?(prefix = "p") () =
  let n = 1 + Atomic.fetch_and_add id_counter 1 in
  let candidate = Printf.sprintf "%s%d" prefix n in
  Symbol.intern candidate

let reset_ids () = Atomic.set id_counter 0

let advance_ids n =
  let rec loop () =
    let cur = Atomic.get id_counter in
    if cur >= n || Atomic.compare_and_set id_counter cur n then () else loop ()
  in
  loop ()

let equal a b =
  Symbol.equal a.id b.id
  && Symbol.equal a.source b.source
  && Symbol.equal a.label b.label
  && Symbol.equal a.dest b.dest
  && Time.equal a.time b.time

let compare a b =
  let c = Symbol.compare a.id b.id in
  if c <> 0 then c
  else
    let c = Symbol.compare a.source b.source in
    if c <> 0 then c
    else
      let c = Symbol.compare a.label b.label in
      if c <> 0 then c
      else
        let c = Symbol.compare a.dest b.dest in
        if c <> 0 then c else Time.compare a.time b.time

let pp ppf p =
  Format.fprintf ppf "%a = <%a, %a, %a, %a>" Symbol.pp p.id Symbol.pp p.source
    Symbol.pp p.label Symbol.pp p.dest Time.pp p.time

let to_string p = Format.asprintf "%a" pp p
