(** CML propositions.

    A proposition is a quadruple [p = <x, l, y, t>]: the node [x] has a
    link labelled [l] to node [y] at time [t], and the link itself is
    named [p].  Nodes are themselves propositions, so [source] and [dest]
    are proposition identifiers.  An individual object such as
    [Invitation] is represented by a self-referential proposition
    [<Invitation, Invitation, Invitation, t>]. *)

type id = Symbol.t

type t = {
  id : id;
  source : id;
  label : Symbol.t;
  dest : id;
  time : Time.t;  (** valid time of the asserted link *)
  belief : Time.point;  (** when the KB learnt about the proposition *)
}

val make : ?time:Time.t -> ?belief:Time.point -> id:id -> source:id ->
  label:Symbol.t -> dest:id -> unit -> t
(** [make ~id ~source ~label ~dest ()] builds a proposition.  [time]
    defaults to [Time.always]; [belief] defaults to [Time.Clock.now ()]. *)

val individual : ?time:Time.t -> id -> t
(** [individual x] is the self-referential proposition declaring node
    [x]: source, label and destination all equal [x]. *)

val is_individual : t -> bool

val fresh_id : ?prefix:string -> unit -> id
(** A globally unique proposition identifier, e.g. [p37]. *)

val reset_ids : unit -> unit
(** Reset the id counter (for tests). *)

val advance_ids : int -> unit
(** Raise the id counter to at least [n], so ids minted after loading a
    snapshot into a fresh process cannot collide with persisted ones. *)

val equal : t -> t -> bool
(** Structural equality, ignoring belief time. *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
