(** Interned strings.

    Proposition identifiers, labels and object names are compared very
    frequently (index lookups, unification).  Interning maps each distinct
    string to a unique small integer so that equality is an integer
    comparison and symbols can key arrays and bitsets. *)

type t

val intern : string -> t
(** [intern s] returns the unique symbol for [s], creating it if needed. *)

val name : t -> string
(** [name t] is the string [t] was interned from. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** Stable dense integer code of the symbol (0-based, creation order). *)

val of_int : int -> t
(** Inverse of {!to_int}.  The argument must be a code previously
    returned by [to_int] (i.e. [0 <= i < count ()]); anything else
    yields a symbol that cannot be resolved.  The density and stability
    of the codes is what lets columnar stores keep whole propositions
    as rows of flat integer columns. *)

val count : unit -> int
(** Number of distinct symbols interned so far. *)

val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
