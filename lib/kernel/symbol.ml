type t = int

(* Interning must be domain-safe: the par pool evaluates Datalog rule
   bodies and consistency checks on several domains, and every one of
   them interns and resolves symbols.  The hot path — looking up an
   already-interned string — is lock-free: an open-addressed table of
   atomic slots, published as a whole through [table] so it can be
   resized.  Inserts take [write_m], re-probe, and only then allocate a
   fresh id.  Slots are only ever written under the mutex; readers see
   a slot either empty (and fall through to the locked slow path) or
   fully published.

   Publication order matters for [name]: the string is stored into the
   names array (and the grown array is published through [names])
   *before* the slot for the new id becomes visible, so any domain that
   can observe an id can also resolve it. *)

type table = { mask : int; slots : (string * int) option Atomic.t array }

let mk_table cap =
  { mask = cap - 1; slots = Array.init cap (fun _ -> Atomic.make None) }

let table = Atomic.make (mk_table 4096)
let names : string array Atomic.t = Atomic.make (Array.make 4096 "")
let next = Atomic.make 0
let write_m = Mutex.create ()

(* linear probing; [None] means [s] was not yet published in [tbl] *)
let probe tbl s =
  let rec go j idx =
    match Atomic.get tbl.slots.(idx) with
    | Some (s', i) when String.equal s' s -> Some i
    | Some _ -> if j = tbl.mask then None else go (j + 1) ((idx + 1) land tbl.mask)
    | None -> None
  in
  go 0 (Hashtbl.hash s land tbl.mask)

(* writers only (under [write_m]) *)
let insert tbl s i =
  let rec go idx =
    match Atomic.get tbl.slots.(idx) with
    | None -> Atomic.set tbl.slots.(idx) (Some (s, i))
    | Some _ -> go ((idx + 1) land tbl.mask)
  in
  go (Hashtbl.hash s land tbl.mask)

(* build the doubled table offline, publish it in one atomic store *)
let resize () =
  let old = Atomic.get table in
  let fresh = mk_table (2 * (old.mask + 1)) in
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | Some (s, i) -> insert fresh s i
      | None -> ())
    old.slots;
  Atomic.set table fresh

let intern_slow s =
  Mutex.lock write_m;
  let i =
    match probe (Atomic.get table) s with
    | Some i -> i (* another domain interned [s] since our fast path *)
    | None ->
      let i = Atomic.get next in
      let arr = Atomic.get names in
      (if i >= Array.length arr then begin
         let bigger = Array.make (2 * Array.length arr) "" in
         Array.blit arr 0 bigger 0 (Array.length arr);
         bigger.(i) <- s;
         Atomic.set names bigger
       end
       else arr.(i) <- s);
      let tbl = Atomic.get table in
      (* keep occupancy under half so probes stay short and always
         terminate on an empty slot *)
      let tbl =
        if 2 * (i + 1) > tbl.mask + 1 then begin
          resize ();
          Atomic.get table
        end
        else tbl
      in
      insert tbl s i;
      Atomic.set next (i + 1);
      i
  in
  Mutex.unlock write_m;
  i

let intern s =
  match probe (Atomic.get table) s with Some i -> i | None -> intern_slow s

let name i = (Atomic.get names).(i)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (i : t) = i
let to_int i = i
let of_int i = i
let count () = Atomic.get next
let pp ppf i = Format.pp_print_string ppf (name i)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
