(** A fixed-size domain pool for data-parallel evaluation.

    The GKBMS serves a group of designers; its inference engines and
    consistency checkers are meant to run as fast as the hardware
    allows.  This pool is the one place the system spawns OCaml 5
    domains: hot paths hand it chunked, read-only work
    ({!map_array} / {!parallel_for}) and merge the results sequentially
    on the calling domain, so no shared mutable table is ever touched
    from two domains at once (the "partition reads, merge writes
    sequentially" rule — see DESIGN.md §8).

    Built on stdlib [Domain] + [Mutex]/[Condition] only; no external
    dependencies.  A pool of size 1 never spawns a domain and runs
    every operation sequentially in the caller, bit-identical to the
    pre-parallel code.  Calls made from inside a pool task also run
    sequentially (no nested parallelism, no deadlock). *)

type t

val create : domains:int -> t
(** [create ~domains] makes a pool that evaluates work on [domains]
    domains in total: the calling domain plus [domains - 1] lazily
    spawned workers.  [domains <= 1] yields a sequential pool. *)

val default : unit -> t
(** The process-wide pool, created on first use.  Its size is
    [GKBMS_DOMAINS] when that environment variable is a positive
    integer, otherwise [Domain.recommended_domain_count ()]. *)

val default_size : unit -> int
(** The size {!default} has (or would have), without forcing pool
    creation. *)

val size : t -> int
(** Total domains used by this pool's operations, including the
    caller; [1] means sequential. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~pool f arr] is [Array.map f arr] with the applications
    of [f] distributed over the pool's domains in contiguous chunks.
    The result array is in input order.  [f] must only read shared
    state (or write state private to the call); the caller merges.

    The calling domain participates in the work.  If any application
    raises, the first exception (in chunk order) is re-raised in the
    caller after all chunks settle.  Without [?pool], or with a pool
    of size 1, or when called from inside a pool task, this is
    exactly [Array.map f arr] on the calling domain. *)

val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list, preserving order. *)

val parallel_for : ?pool:t -> int -> (int -> unit) -> unit
(** [parallel_for ~pool n f] runs [f 0 .. f (n-1)], distributed in
    chunks like {!map_array}. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] executes [f ()] on one of the pool's worker domains and
    waits for the result (exceptions re-raised in the caller).  Used
    by the server to move read-command evaluation off the accept
    domain.  On a sequential pool (or from inside a pool task) [f] is
    run directly in the caller. *)

val in_worker : unit -> bool
(** [true] when the current code is executing inside a pool task (on
    any pool) — parallel entry points use this to fall back to
    sequential evaluation instead of deadlocking on a nested pool. *)

type stats = { domains : int; tasks : int; steals : int }

val stats : t -> stats
(** [tasks] counts chunks/submissions executed; [steals] counts chunks
    that ran on a different domain than static partitioning would have
    assigned (a measure of how much the dynamic scheduler rebalanced). *)

val shutdown : t -> unit
(** Join the pool's worker domains.  The pool must not be used
    afterwards.  Idempotent; every pool also shuts down automatically
    at process exit, so callers only need this to reclaim domains
    early. *)
