(* See pool.mli.  One shared FIFO of thunks, workers blocked on a
   condition variable; parallel iterations self-schedule over an atomic
   chunk counter, so a slow chunk never leaves the other domains idle
   behind a static partition. *)

type job = unit -> unit

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  total : int;  (* domains incl. the caller; 1 = sequential *)
  mutable workers : unit Domain.t list;
  mutable spawned : bool;
  mutable stopping : bool;
  tasks : int Atomic.t;
  steals : int Atomic.t;
}

(* registry series ----------------------------------------------------- *)

let reg = Obs.Registry.default

let g_tasks =
  Obs.Registry.counter reg "gkbms_par_pool_tasks_total"
    ~help:"Chunks and submissions executed by the domain pool"

let g_steals =
  Obs.Registry.counter reg "gkbms_par_pool_steals_total"
    ~help:"Pool chunks that ran on a different domain than static \
           partitioning would have picked"

let g_domains =
  Obs.Registry.gauge reg "gkbms_par_pool_domains"
    ~help:"Size of the default domain pool (including the caller)"

let h_map_us =
  Obs.Registry.histogram reg "gkbms_par_map_array_us"
    ~help:"Wall-clock latency of Pool.map_array calls in microseconds"

(* worker identity ------------------------------------------------------ *)

(* [worker_state] is (in_task, worker_id): [in_task] marks code running
   inside a pool task on any domain (including the caller while it
   helps), so nested parallel entry points degrade to sequential;
   [worker_id] is the spawn index of a pool worker, [-1] elsewhere. *)
let worker_state : (bool ref * int ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref false, ref (-1)))

let in_worker () =
  let in_task, _ = Domain.DLS.get worker_state in
  !in_task

let self_id () =
  let _, id = Domain.DLS.get worker_state in
  !id

(* marks the dynamic extent of a task; tasks never leak exceptions *)
let in_task f =
  let flag, _ = Domain.DLS.get worker_state in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let worker_loop t wid () =
  let in_task_flag, id = Domain.DLS.get worker_state in
  ignore in_task_flag;
  id := wid;
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.m
    done;
    let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.m;
    match job with
    | Some job -> job ()
    | None -> continue_ := false (* stopping and drained *)
  done

(* forward-declared so [create] can register exit cleanup *)
let shutdown_ref = ref (fun (_ : t) -> ())

let create ~domains =
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      total = max 1 domains;
      workers = [];
      spawned = false;
      stopping = false;
      tasks = Atomic.make 0;
      steals = Atomic.make 0;
    }
  in
  (* workers block on a condition variable: wake and join them on
     process exit, or the runtime would wait on them forever *)
  if t.total > 1 then at_exit (fun () -> !shutdown_ref t);
  t

let size t = t.total

let ensure_spawned t =
  if not t.spawned then begin
    Mutex.lock t.m;
    if (not t.spawned) && not t.stopping then begin
      t.workers <-
        List.init (t.total - 1) (fun wid -> Domain.spawn (worker_loop t wid));
      t.spawned <- true
    end;
    Mutex.unlock t.m
  end

let enqueue t job =
  Mutex.lock t.m;
  Queue.add job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  let already = t.stopping in
  t.stopping <- true;
  let workers = t.workers in
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  if not already then List.iter Domain.join workers

let () = shutdown_ref := shutdown

(* default pool --------------------------------------------------------- *)

let default_size () =
  match Sys.getenv_opt "GKBMS_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_m = Mutex.create ()
let default_ref = ref None

let default () =
  Mutex.lock default_m;
  let p =
    match !default_ref with
    | Some p -> p
    | None ->
      let p = create ~domains:(default_size ()) in
      default_ref := Some p;
      Obs.Registry.Gauge.set g_domains (Float.of_int p.total);
      p
  in
  Mutex.unlock default_m;
  p

(* parallel iteration --------------------------------------------------- *)

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

(* Distribute [nchunks] chunk indices over the pool (caller included)
   via an atomic counter; [exec lo hi] runs one chunk.  Returns after
   every chunk has settled; re-raises the first chunk's exception. *)
let drive t ~nchunks exec =
  ensure_spawned t;
  let next = Atomic.make 0 in
  let bm = Mutex.create () in
  let bc = Condition.create () in
  let remaining = ref nchunks in
  let errors = Array.make nchunks None in
  let run_chunks () =
    in_task @@ fun () ->
    let self = self_id () in
    let rec go () =
      let ci = Atomic.fetch_and_add next 1 in
      if ci < nchunks then begin
        if self <> ci mod t.total then begin
          Atomic.incr t.steals;
          Obs.Registry.Counter.inc g_steals
        end;
        (try Obs.Trace.with_span "par.task" (fun () -> exec ci)
         with e -> errors.(ci) <- Some (e, Printexc.get_raw_backtrace ()));
        Mutex.lock bm;
        decr remaining;
        if !remaining = 0 then Condition.broadcast bc;
        Mutex.unlock bm;
        go ()
      end
    in
    go ()
  in
  (* enough helpers that every worker can participate, never more than
     there are chunks *)
  for _ = 1 to min (t.total - 1) nchunks do
    enqueue t run_chunks
  done;
  run_chunks ();
  Mutex.lock bm;
  while !remaining > 0 do
    Condition.wait bc bm
  done;
  Mutex.unlock bm;
  Atomic.fetch_and_add t.tasks nchunks |> ignore;
  Obs.Registry.Counter.inc g_tasks ~by:nchunks;
  Array.iter (function Some err -> reraise err | None -> ()) errors

let chunk_bounds n nchunks ci =
  let lo = ci * n / nchunks and hi = (ci + 1) * n / nchunks in
  (lo, hi)

let map_array ?pool f arr =
  let n = Array.length arr in
  match pool with
  | None -> Array.map f arr
  | Some t when t.total <= 1 || n <= 1 || in_worker () -> Array.map f arr
  | Some t ->
    let t0 = Unix.gettimeofday () in
    let nchunks = min n (t.total * 2) in
    let out = Array.make nchunks [||] in
    drive t ~nchunks (fun ci ->
        let lo, hi = chunk_bounds n nchunks ci in
        out.(ci) <- Array.init (hi - lo) (fun k -> f arr.(lo + k)));
    let r = Array.concat (Array.to_list out) in
    Obs.Histogram.observe h_map_us ((Unix.gettimeofday () -. t0) *. 1e6);
    r

let map_list ?pool f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | l -> Array.to_list (map_array ?pool f (Array.of_list l))

let parallel_for ?pool n f =
  match pool with
  | None -> for i = 0 to n - 1 do f i done
  | Some t when t.total <= 1 || n <= 1 || in_worker () ->
    for i = 0 to n - 1 do f i done
  | Some t ->
    let nchunks = min n (t.total * 2) in
    drive t ~nchunks (fun ci ->
        let lo, hi = chunk_bounds n nchunks ci in
        for i = lo to hi - 1 do
          f i
        done)

(* single-task submission ----------------------------------------------- *)

let run t f =
  if t.total <= 1 || in_worker () then f ()
  else begin
    ensure_spawned t;
    let bm = Mutex.create () in
    let bc = Condition.create () in
    let result = ref None in
    enqueue t (fun () ->
        let r =
          in_task @@ fun () ->
          Obs.Trace.with_span "par.task" @@ fun () ->
          match f () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock bm;
        result := Some r;
        Condition.broadcast bc;
        Mutex.unlock bm);
    Mutex.lock bm;
    while !result = None do
      Condition.wait bc bm
    done;
    Mutex.unlock bm;
    Atomic.incr t.tasks;
    Obs.Registry.Counter.inc g_tasks;
    match !result with
    | Some (Ok v) -> v
    | Some (Error err) -> reraise err
    | None -> assert false
  end

type stats = { domains : int; tasks : int; steals : int }

let stats t =
  { domains = t.total; tasks = Atomic.get t.tasks; steals = Atomic.get t.steals }
