(* Leader → follower WAL shipping: wire codecs, the leader's repl
   command family, follower bootstrap/catch-up, read-your-writes
   session tokens, write refusal, and the convergence differential
   (leader and follower canonical snapshots must be byte-identical,
   including across checkpoints, restarts and simulated crashes). *)

module Daemon = Server.Daemon
module Client = Server.Client
module Repo = Gkbms.Repository
module Scn = Gkbms.Scenario
module Durable = Gkbms.Durable
module Wal = Durability.Wal
module Wire = Replication.Wire
module Applier = Replication.Applier
module Leader = Replication.Leader
module Follower = Replication.Follower

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let req_ok client line =
  match Client.request client line with
  | Ok s -> s
  | Error e -> Alcotest.failf "request %S failed: %s" line e

let req_err client line =
  match Client.request client line with
  | Ok s -> Alcotest.failf "request %S unexpectedly succeeded: %s" line s
  | Error e -> e

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec loop i = i + nl <= hl && (String.sub hay i nl = needle || loop (i + 1)) in
  loop 0

let temp_dir () =
  let d = Filename.temp_file "gkbms-repl" "" in
  Sys.remove d;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let canonical repo = Gkbms.Persist.save_repository_canonical repo

let decisions repo = List.map Kernel.Symbol.name (Repo.decision_log repo)

(* wire codecs ----------------------------------------------------------- *)

let test_wire_roundtrips () =
  (match Wire.parse_hello (Wire.format_hello ~generation:3 ~version:41) with
  | Ok h ->
    check int "hello gen" 3 h.Wire.h_generation;
    check int "hello version" 41 h.Wire.h_version
  | Error e -> Alcotest.fail e);
  (match Wire.parse_hello "gkbms-repl 99 0 0" with
  | Error e -> check bool "version mismatch reported" true (contains "version" e)
  | Ok _ -> Alcotest.fail "foreign protocol version accepted");
  (match Wire.parse_token (Wire.format_token ~epoch:2 ~version:7) with
  | Ok t ->
    check int "token epoch" 2 t.Wire.t_epoch;
    check int "token version" 7 t.Wire.t_version
  | Error e -> Alcotest.fail e);
  (* chunks are binary: newlines and NULs must survive *)
  let chunk = "bin\x00ary\nwith\nnewlines" in
  (match
     Wire.parse_snapshot
       (Wire.format_snapshot ~generation:1 ~offset:8 ~total:999 ~chunk)
   with
  | Ok s ->
    check int "snap gen" 1 s.Wire.s_generation;
    check int "snap offset" 8 s.Wire.s_offset;
    check int "snap total" 999 s.Wire.s_total;
    check string "snap chunk intact" chunk s.Wire.s_chunk
  | Error e -> Alcotest.fail e);
  (match
     Wire.parse_frames
       (Wire.format_frames ~next_gen:2 ~next_offset:1234 ~caught_up:true
          ~epoch:2 ~version:56 ~chunk)
   with
  | Ok f ->
    check int "frames next gen" 2 f.Wire.f_next_gen;
    check int "frames next offset" 1234 f.Wire.f_next_offset;
    check bool "frames caught up" true f.Wire.f_caught_up;
    check int "frames epoch" 2 f.Wire.f_epoch;
    check int "frames version" 56 f.Wire.f_version;
    check string "frames chunk intact" chunk f.Wire.f_chunk
  | Error e -> Alcotest.fail e);
  (match Wire.parse_frames "1 2 garbage 4 5\nx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage header parsed")

let test_session_tokens () =
  check bool "parse roundtrip" true
    (Wire.parse_session_token (Wire.format_session_token ~epoch:4 ~version:17)
    = Ok (4, 17));
  (match Wire.parse_session_token "nonsense" with
  | Error e -> check bool "parse error mentions shape" true (contains "EPOCH" e)
  | Ok _ -> Alcotest.fail "nonsense token parsed");
  (* lexicographic: a later epoch dominates any version *)
  check bool "same epoch by version" true (Wire.token_le (1, 5) (1, 5));
  check bool "version strictly less" true (Wire.token_le (1, 4) (1, 5));
  check bool "version greater" false (Wire.token_le (1, 6) (1, 5));
  check bool "epoch dominates" true (Wire.token_le (1, 999) (2, 0));
  check bool "epoch dominates reverse" false (Wire.token_le (2, 0) (1, 999));
  check bool "resync error recognized" true
    (Wire.is_resync_error "error: resync: cursor unservable");
  check bool "other errors not resync" false
    (Wire.is_resync_error "error: something else")

(* a leader daemon journaling a scenario repository ----------------------- *)

type leader_rig = {
  l_dir : string;
  l_st : Scn.state;
  mutable l_daemon : Daemon.t;
}

let make_leader ?(config = Daemon.default_config) dir =
  let st = ok (Scn.setup ()) in
  let daemon = Daemon.create ~config st.Scn.repo in
  ok (Daemon.attach_wal daemon ~dir);
  ignore (ok (Leader.attach daemon));
  { l_dir = dir; l_st = st; l_daemon = daemon }

let leader_client rig = Client.of_transport (Daemon.connect rig.l_daemon)

let leader_token rig =
  let d = Option.get (Daemon.durable rig.l_daemon) in
  (Durable.generation d, Repo.version (Daemon.repo rig.l_daemon))

let connect_to rig () = Ok (Client.of_transport (Daemon.connect rig.l_daemon))

let make_follower ?name rig dir =
  Follower.create ?name ~leader:"leader.sock" ~connect:(connect_to rig) ~dir ()

let converged rig follower =
  check Alcotest.(list string) "decision logs equal"
    (decisions (Daemon.repo rig.l_daemon))
    (decisions (Follower.repo follower));
  check string "canonical snapshots byte-identical"
    (canonical (Daemon.repo rig.l_daemon))
    (canonical (Follower.repo follower))

(* leader command family -------------------------------------------------- *)

let test_leader_frames_basic () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let rig = make_leader dir in
  ignore (ok (Scn.map_move_down rig.l_st));
  let c = leader_client rig in
  (match Wire.parse_hello (req_ok c "repl hello") with
  | Ok h -> check int "initial generation" 0 h.Wire.h_generation
  | Error e -> Alcotest.fail e);
  let frames =
    match Wire.parse_frames (req_ok c (Wire.frames ~gen:0 ~offset:0
                                         ~max_bytes:(1 lsl 20) ~wait_ms:0))
    with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  check bool "caught up" true frames.Wire.f_caught_up;
  check bool "chunk has bytes" true (String.length frames.Wire.f_chunk > 0);
  (* the chunk is exactly the framed log: scan it headerless *)
  let scan = Wal.scan_from ~expect_header:false frames.Wire.f_chunk ~offset:0 in
  check bool "chunk scans clean" true (scan.Wal.truncated = None);
  check int "chunk fully consumed" (String.length frames.Wire.f_chunk)
    scan.Wal.valid_bytes;
  check bool "contains the decision commit" true
    (List.exists (function Wal.Decision_commit _ -> true | _ -> false)
       scan.Wal.records);
  (* re-request at the returned cursor: empty and still caught up *)
  (match
     Wire.parse_frames
       (req_ok c
          (Wire.frames ~gen:frames.Wire.f_next_gen
             ~offset:frames.Wire.f_next_offset ~max_bytes:(1 lsl 20) ~wait_ms:0))
   with
  | Ok f2 ->
    check int "no new bytes" 0 (String.length f2.Wire.f_chunk);
    check bool "still caught up" true f2.Wire.f_caught_up
  | Error e -> Alcotest.fail e);
  (* unservable cursors demand a resync *)
  check bool "future generation is resync" true
    (Wire.is_resync_error
       (req_err c (Wire.frames ~gen:99 ~offset:0 ~max_bytes:4096 ~wait_ms:0)));
  check bool "offset past head is resync" true
    (Wire.is_resync_error
       (req_err c
          (Wire.frames ~gen:0 ~offset:99_999_999 ~max_bytes:4096 ~wait_ms:0)));
  (* leader answers wait trivially at its own state *)
  let e, v = leader_token rig in
  (match Wire.parse_token (req_ok c (Printf.sprintf "wait %d %d 1000" e v)) with
  | Ok t -> check bool "wait token covers request" true
              (Wire.token_le (e, v) (t.Wire.t_epoch, t.Wire.t_version))
  | Error err -> Alcotest.fail err);
  Client.close c;
  Daemon.stop rig.l_daemon

(* bootstrap, catch-up, read-your-writes --------------------------------- *)

let test_follower_bootstrap_and_catch_up () =
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf fdir) @@ fun () ->
  let rig = make_leader ldir in
  ignore (ok (Scn.map_move_down rig.l_st));
  ignore (ok (Scn.normalize_invitations rig.l_st));
  let f = ok (make_follower ~name:"f1" rig fdir) in
  Fun.protect ~finally:(fun () -> Follower.stop f) @@ fun () ->
  ok (Follower.catch_up f);
  converged rig f;
  (* the applied token covers the leader's *)
  let e, v = leader_token rig in
  check bool "applied covers leader token" true
    (Wire.token_le (e, v) (Follower.applied f));
  (* new work on the leader flows through a later catch-up *)
  ignore (ok (Scn.substitute_key rig.l_st));
  ok (Follower.catch_up f);
  converged rig f;
  (* read-your-writes: the new token is immediately waitable *)
  let e2, v2 = leader_token rig in
  check bool "wait_for succeeds" true
    (Follower.wait_for f ~epoch:e2 ~version:v2 ~timeout_ms:1000);
  check bool "wait_for a future token times out" false
    (Follower.wait_for f ~epoch:e2 ~version:(v2 + 1000) ~timeout_ms:60);
  Daemon.stop rig.l_daemon

let test_follower_refuses_writes () =
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf fdir) @@ fun () ->
  let rig = make_leader ldir in
  ignore (ok (Scn.map_move_down rig.l_st));
  let f = ok (make_follower ~name:"f1" rig fdir) in
  Fun.protect ~finally:(fun () -> Follower.stop f) @@ fun () ->
  ok (Follower.catch_up f);
  let c = Client.of_transport (Daemon.connect (Follower.daemon f)) in
  let refusal = req_err c "normalize" in
  check bool "names the follower role" true (contains "read-only follower" refusal);
  check bool "redirects to the leader" true (contains "leader.sock" refusal);
  (* reads are served normally, at the applied version *)
  check bool "reads still served" true
    (contains "decisions: 1" (req_ok c "stats"));
  (* the protocol wait command works through the follower daemon *)
  let e, v = leader_token rig in
  ignore (req_ok c (Printf.sprintf "wait %d %d 2000" e v));
  check bool "wait timeout reported" true
    (contains "timeout" (req_err c (Printf.sprintf "wait %d %d 50" e (v + 999))));
  (* applied/status introspection *)
  (match Wire.parse_token (req_ok c "repl applied") with
  | Ok t -> check bool "repl applied covers leader" true
              (Wire.token_le (e, v) (t.Wire.t_epoch, t.Wire.t_version))
  | Error err -> Alcotest.fail err);
  check bool "repl status names follower" true
    (contains "follower f1" (req_ok c "repl status"));
  Client.close c;
  Daemon.stop rig.l_daemon

(* checkpoints rotate the generation; followers cross the boundary ------- *)

let test_generation_boundary () =
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf fdir) @@ fun () ->
  let rig = make_leader ldir in
  ignore (ok (Scn.map_move_down rig.l_st));
  let f = ok (make_follower ~name:"f1" rig fdir) in
  Fun.protect ~finally:(fun () -> Follower.stop f) @@ fun () ->
  ok (Follower.catch_up f);
  let durable = Option.get (Daemon.durable rig.l_daemon) in
  let gen_before = Durable.generation durable in
  ok (Durable.checkpoint durable);
  check int "checkpoint rotated the generation" (gen_before + 1)
    (Durable.generation durable);
  ignore (ok (Scn.normalize_invitations rig.l_st));
  ok (Follower.catch_up f);
  converged rig f;
  let g, _ = Follower.cursor f in
  check int "follower crossed into the new generation" (gen_before + 1) g;
  (* epochs grew with the rotation, so fresh tokens still compare greater *)
  let e, v = leader_token rig in
  check bool "post-rotation token waitable" true
    (Follower.wait_for f ~epoch:e ~version:v ~timeout_ms:1000);
  Daemon.stop rig.l_daemon

(* follower restart: warm recovery resumes at the persisted cursor ------- *)

let test_follower_restart_resumes () =
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf fdir) @@ fun () ->
  let rig = make_leader ldir in
  ignore (ok (Scn.map_move_down rig.l_st));
  let f1 = ok (make_follower ~name:"f1" rig fdir) in
  ok (Follower.catch_up f1);
  let cursor_before = Follower.cursor f1 in
  Follower.stop f1;
  (* leader keeps writing while the follower is down *)
  ignore (ok (Scn.normalize_invitations rig.l_st));
  ignore (ok (Scn.substitute_key rig.l_st));
  (* restart from the same directory: local recovery, not a re-bootstrap *)
  let snaps_before =
    Obs.Registry.Counter.get
      (Obs.Registry.counter Obs.Registry.default "gkbms_repl_bootstraps_total")
  in
  let f2 = ok (make_follower ~name:"f1" rig fdir) in
  Fun.protect ~finally:(fun () -> Follower.stop f2) @@ fun () ->
  check bool "restart did not re-bootstrap" true
    (Obs.Registry.Counter.get
       (Obs.Registry.counter Obs.Registry.default "gkbms_repl_bootstraps_total")
    = snaps_before);
  check bool "cursor resumed where it left off" true
    (Follower.cursor f2 = cursor_before);
  ok (Follower.catch_up f2);
  converged rig f2;
  Daemon.stop rig.l_daemon

(* leader restart: epochs stay monotone, followers reconnect ------------- *)

let test_leader_restart_epoch_monotone () =
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf fdir) @@ fun () ->
  let rig = make_leader ldir in
  ignore (ok (Scn.map_move_down rig.l_st));
  let f = ok (make_follower ~name:"f1" rig fdir) in
  Fun.protect ~finally:(fun () -> Follower.stop f) @@ fun () ->
  ok (Follower.catch_up f);
  let epoch_before, _ = leader_token rig in
  (* "restart" the leader: stop the daemon (closes the WAL), recover the
     directory, rebuild the daemon around the recovered repository *)
  Daemon.stop rig.l_daemon;
  let durable, _report = ok (Durable.open_ ~dir:ldir ()) in
  let daemon = Daemon.create (Durable.repo durable) in
  ok (Daemon.attach_durable daemon durable);
  ignore (ok (Leader.attach daemon));
  rig.l_daemon <- daemon;
  check bool "generation grew across the restart" true
    (Durable.generation durable > epoch_before);
  (* the follower's first pull fails on the dead connection, then
     reconnects and converges *)
  (match Follower.step f with Ok _ -> () | Error _ -> ());
  ok (Follower.catch_up f);
  converged rig f;
  let e, v = leader_token rig in
  check bool "post-restart token waitable" true
    (Follower.wait_for f ~epoch:e ~version:v ~timeout_ms:1000);
  Daemon.stop daemon

(* the full storyline, including retraction, replicates ------------------ *)

let test_full_scenario_replicates () =
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf fdir) @@ fun () ->
  let rig = make_leader ldir in
  let f = ok (make_follower ~name:"f1" rig fdir) in
  Fun.protect ~finally:(fun () -> Follower.stop f) @@ fun () ->
  ignore (ok (Scn.map_move_down rig.l_st));
  ignore (ok (Scn.normalize_invitations rig.l_st));
  ok (Follower.catch_up f);
  ignore (ok (Scn.substitute_key rig.l_st));
  ignore (ok (Scn.introduce_minutes rig.l_st));
  (* resolve_conflict retracts a decision: the unlog note must replicate *)
  ignore (ok (Scn.resolve_conflict rig.l_st));
  ok (Follower.catch_up f);
  converged rig f;
  (* artifacts (design sources) came across, not just propositions *)
  List.iter
    (fun obj ->
      check bool
        (Kernel.Symbol.name obj ^ " artifact replicated")
        true
        (Repo.source_text (Daemon.repo rig.l_daemon) obj
        = Repo.source_text (Follower.repo f) obj))
    (Repo.all_design_objects (Daemon.repo rig.l_daemon));
  Daemon.stop rig.l_daemon

(* randomized convergence differential ----------------------------------- *)

(* a random mutation on the leader: a manual-edit decision on a random
   version tip (each success is one WAL decision frame; editing an
   object that already has a successor aborts the decision — also worth
   shipping, so those are kept in the mix and tolerated) *)
let random_edit rng tips st =
  let repo = st.Scn.repo in
  let i = Random.State.int rng (Array.length !tips) in
  match
    Gkbms.Decision.execute repo
      ~decision_class:Gkbms.Metamodel.dec_manual_edit
      ~tool:Gkbms.Mapping.editor_tool
      ~inputs:[ ("object", !tips.(i)) ]
      ~params:[ ("text", Printf.sprintf "edit %d" (Random.State.int rng 1_000_000)) ]
      ()
  with
  | Ok executed -> (
    (* keep editing the new version next time *)
    match List.assoc_opt "edited" executed.Gkbms.Decision.outputs with
    | Some obj -> !tips.(i) <- obj
    | None -> ())
  | Error _ -> ()

let scenario_steps =
  [|
    (fun st -> ignore (ok (Scn.map_move_down st)));
    (fun st -> ignore (ok (Scn.normalize_invitations st)));
    (fun st -> ignore (ok (Scn.substitute_key st)));
    (fun st -> ignore (ok (Scn.introduce_minutes st)));
    (fun st -> ignore (ok (Scn.resolve_conflict st)));
  |]

let run_differential ~seed ~rounds () =
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf fdir) @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let rig = make_leader ldir in
  (* dedicated version chains for the random edits, so they never
     collide with names the storyline steps want to create *)
  let tips =
    ref
      (Array.init 4 (fun i ->
           ok
             (Repo.new_object rig.l_st.Scn.repo
                ~name:(Printf.sprintf "ReplDoc%d" i)
                ~cls:Gkbms.Metamodel.dbpl_object (Repo.Text "v0"))))
  in
  let follower = ref (ok (make_follower ~name:"f1" rig fdir)) in
  let next_step = ref 0 in
  Fun.protect ~finally:(fun () ->
      Follower.stop !follower;
      Daemon.stop rig.l_daemon)
  @@ fun () ->
  for _ = 1 to rounds do
    (match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      (* advance the storyline, or fall back to random edits *)
      if !next_step < Array.length scenario_steps then begin
        scenario_steps.(!next_step) rig.l_st;
        incr next_step
      end
      else random_edit rng tips rig.l_st
    | 4 | 5 | 6 -> random_edit rng tips rig.l_st
    | 7 ->
      (* leader checkpoint: rotates the generation mid-stream *)
      ok (Durable.checkpoint (Option.get (Daemon.durable rig.l_daemon)))
    | 8 ->
      (* follower crash/restart: resume from the persisted cursor *)
      Follower.stop !follower;
      follower := ok (make_follower ~name:"f1" rig fdir)
    | _ -> ());
    (* pull with probability ~1/2, so the follower is often behind *)
    if Random.State.bool rng then
      match Follower.step !follower with Ok _ -> () | Error _ -> ()
  done;
  ok (Follower.catch_up !follower);
  converged rig !follower

let test_differential_seed_1 () = run_differential ~seed:11 ~rounds:60 ()
let test_differential_seed_2 () = run_differential ~seed:22 ~rounds:60 ()
let test_differential_seed_3 () = run_differential ~seed:33 ~rounds:60 ()

(* the arena (GC-invisible) backend behaves identically ------------------ *)

let test_convergence_arena_backend () =
  (* restore whatever the process default was (GKBMS_STORE or mem) *)
  let restore =
    match
      Option.map Store.Base.backend_of_string (Sys.getenv_opt "GKBMS_STORE")
    with
    | Some (Ok b) -> b
    | _ -> `Mem
  in
  Store.Base.set_default_backend `Arena;
  Fun.protect ~finally:(fun () -> Store.Base.set_default_backend restore)
  @@ fun () ->
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf fdir) @@ fun () ->
  let rig = make_leader ldir in
  ignore (ok (Scn.map_move_down rig.l_st));
  ignore (ok (Scn.normalize_invitations rig.l_st));
  let f = ok (make_follower ~name:"f1" rig fdir) in
  Fun.protect ~finally:(fun () -> Follower.stop f) @@ fun () ->
  ok (Follower.catch_up f);
  converged rig f;
  Daemon.stop rig.l_daemon

(* applier unit behavior -------------------------------------------------- *)

let test_applier_skips_logged_decisions () =
  let ldir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf ldir) @@ fun () ->
  let rig = make_leader ldir in
  ignore (ok (Scn.map_move_down rig.l_st));
  let c = leader_client rig in
  let frames =
    match
      Wire.parse_frames
        (req_ok c (Wire.frames ~gen:0 ~offset:0 ~max_bytes:(1 lsl 20) ~wait_ms:0))
    with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let records =
    (Wal.scan_from ~expect_header:false frames.Wire.f_chunk ~offset:0).Wal.records
  in
  Client.close c;
  (* apply the same stream twice into a fresh repository: the second
     pass must be a no-op (idempotent overlap replay) *)
  let target = ok (Gkbms.Persist.load_repository
                     (Gkbms.Persist.save_repository (ok (Scn.setup ())).Scn.repo))
  in
  let applier = Applier.create target in
  ok (Applier.feed_all applier records);
  check int "depth back to zero" 0 (Applier.depth applier);
  let snap = canonical target in
  let decisions_after = Applier.decisions_applied applier in
  ok (Applier.feed_all applier records);
  check string "second replay changed nothing" snap (canonical target);
  check int "no decision re-applied" decisions_after
    (Applier.decisions_applied applier);
  Daemon.stop rig.l_daemon

(* trace propagation across the replication stream ------------------------ *)

module Ctx = Obs.Trace_context

let prop_trace_note_roundtrip =
  QCheck.Test.make ~name:"WAL trace notes round-trip over the wire helpers"
    ~count:200
    QCheck.(
      quad small_nat (option (triple int64 int64 bool)) bool
        (float_range 0. 2e9))
    (fun (n, ctx, _, commit_s) ->
      let decision = Printf.sprintf "dec%d" n in
      let ctx =
        Option.map
          (fun (trace_id, span_id, sampled) -> { Ctx.trace_id; span_id; sampled })
          ctx
      in
      match
        Wire.parse_trace_note (Wire.format_trace_note ~decision ~ctx ~commit_s)
      with
      | Ok (d', ctx', c') ->
        d' = decision
        && Option.equal Ctx.equal ctx ctx'
        && Float.abs (c' -. commit_s) <= 1e-5
      | Error _ -> false)

let lag_count () =
  match
    Obs.Registry.find Obs.Registry.default "gkbms_repl_visibility_lag_seconds"
  with
  | Some { Obs.Registry.value = Obs.Registry.Histogram_v s; _ } ->
    s.Obs.Histogram.total
  | _ -> 0

let test_trace_spans_replication () =
  let ldir = temp_dir () and fdir = temp_dir () in
  Fun.protect ~finally:(fun () ->
      rm_rf ldir;
      rm_rf fdir)
  @@ fun () ->
  let rig = make_leader ldir in
  let f = ok (make_follower ~name:"f1" rig fdir) in
  Fun.protect ~finally:(fun () -> Follower.stop f) @@ fun () ->
  ok (Follower.catch_up f);
  let before = lag_count () in
  Obs.Recorder.clear ();
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Obs.Trace.set_slow_threshold_s 10.;
  Fun.protect ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.set_slow_threshold_s 0.1;
      Daemon.stop rig.l_daemon)
  @@ fun () ->
  let c = leader_client rig in
  let res, trace = Client.request_traced c "map" in
  let out = ok res in
  check bool "decision executed" true (contains "executed: decision" out);
  (* "map executed: decision decN -> ..." *)
  let dec =
    match String.split_on_char ' ' out with
    | _ :: _ :: _ :: d :: _ -> d
    | _ -> Alcotest.failf "cannot parse decision id from %S" out
  in
  ok (Follower.catch_up f);
  converged rig f;
  (* the commit-stamp note crossed the stream and fed the lag histogram *)
  check bool "visibility lag observed" true (lag_count () > before);
  (* the follower's flight recorder saw the apply, under the same trace *)
  let applied =
    List.exists
      (fun ev ->
        ev.Obs.Recorder.decision = dec
        && ev.Obs.Recorder.trace = Some trace
        &&
        match ev.Obs.Recorder.kind with
        | Obs.Recorder.Applied lag -> lag >= 0.
        | _ -> false)
      (Obs.Recorder.events ())
  in
  check bool "recorder holds the traced apply" true applied;
  (* and the apply span itself is stitched into the same trace *)
  let apply_span =
    List.exists
      (fun sp ->
        sp.Obs.Trace.span_name = "follower.apply"
        && List.mem ("trace", trace) sp.Obs.Trace.attrs
        && List.mem ("decision", dec) sp.Obs.Trace.attrs)
      (Obs.Trace.recent ())
  in
  check bool "follower.apply span carries the trace id" true apply_span

let suite =
  [
    ("wire roundtrips", `Quick, test_wire_roundtrips);
    ("session tokens", `Quick, test_session_tokens);
    ("leader frames basics", `Quick, test_leader_frames_basic);
    ("follower bootstrap and catch-up", `Quick, test_follower_bootstrap_and_catch_up);
    ("follower refuses writes", `Quick, test_follower_refuses_writes);
    ("generation boundary crossed", `Quick, test_generation_boundary);
    ("follower restart resumes", `Quick, test_follower_restart_resumes);
    ("leader restart keeps epochs monotone", `Quick, test_leader_restart_epoch_monotone);
    ("full scenario replicates", `Quick, test_full_scenario_replicates);
    ("convergence differential (seed 11)", `Quick, test_differential_seed_1);
    ("convergence differential (seed 22)", `Quick, test_differential_seed_2);
    ("convergence differential (seed 33)", `Quick, test_differential_seed_3);
    ("convergence on arena backend", `Quick, test_convergence_arena_backend);
    ("applier skips already-logged decisions", `Quick, test_applier_skips_logged_decisions);
    QCheck_alcotest.to_alcotest prop_trace_note_roundtrip;
    ("trace spans the replication stream", `Quick, test_trace_spans_replication);
  ]
