module Shell = Gkbms.Shell

let check = Alcotest.check
let bool = Alcotest.bool

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec loop i = i + nl <= hl && (String.sub hay i nl = needle || loop (i + 1)) in
  loop 0

let test_session_runs_the_storyline () =
  let shell = ok (Shell.create ()) in
  check bool "unmapped lists the hierarchy" true
    (contains "Papers" (Shell.eval shell "unmapped"));
  check bool "map" true (contains "dec1" (Shell.eval shell "map"));
  check bool "normalize" true (contains "InvitationRel2" (Shell.eval shell "normalize"));
  check bool "key" true (contains "InvitationRel3" (Shell.eval shell "key"));
  check bool "minutes" true (contains "MinuteRel" (Shell.eval shell "minutes"));
  check bool "check sees the conflict" true
    (contains "unsupported: InvitationRel3" (Shell.eval shell "check"));
  check bool "resolve backtracks" true
    (contains "retracted decisions: dec3" (Shell.eval shell "resolve"));
  check bool "config ends complete" true
    (contains "MinuteRel" (Shell.eval shell "config"))

let test_browsing_commands () =
  let shell = ok (Shell.create ()) in
  ignore (Shell.eval shell "map");
  check bool "focus" true
    (contains "focus: InvitationRel" (Shell.eval shell "focus InvitationRel"));
  check bool "menu" true
    (contains "DecNormalize" (Shell.eval shell "menu InvitationRel"));
  check bool "why" true
    (contains "created by dec1" (Shell.eval shell "why InvitationRel"));
  check bool "source" true
    (contains "TYPE InvitationType" (Shell.eval shell "source InvitationRel"));
  check bool "deps" true (contains "--from--> dec1" (Shell.eval shell "deps Papers"));
  ignore (Shell.eval shell "normalize");
  check bool "history" true
    (contains "InvitationRel2" (Shell.eval shell "history InvitationRel"))

let test_ask_and_derive () =
  let shell = ok (Shell.create ()) in
  check bool "ask true" true
    (Shell.eval shell "ask forall x/Normalized_DBPL_Rel in(?x, DBPL_Rel)" = "true");
  ignore (Shell.eval shell "map");
  check bool "derive" true
    (contains "DBPL_Rel" (Shell.eval shell "derive in(InvitationRel, ?C)"));
  check bool "parse error reported" true
    (contains "error" (Shell.eval shell "ask ((("))

let test_run_generic_decision () =
  let shell = ok (Shell.create ()) in
  ignore (Shell.eval shell "map");
  let out =
    Shell.eval shell
      "run DecNormalize Normalizer relation=InvitationRel"
  in
  check bool "generic run works" true (contains "InvitationRel2" out)

let test_error_recovery () =
  let shell = ok (Shell.create ()) in
  check bool "unknown command" true
    (contains "unknown command" (Shell.eval shell "frobnicate"));
  check bool "bad focus is harmless" true
    (contains "no such object"
       (Shell.eval shell "focus Nonexistent")
    || Shell.eval shell "focus Nonexistent" <> "");
  (* the session still works after errors *)
  check bool "still alive" true (contains "dec1" (Shell.eval shell "map"))

let test_save_and_load () =
  let shell = ok (Shell.create ()) in
  ignore (Shell.eval shell "map");
  let path = Filename.temp_file "gkbms_shell" ".repo" in
  check bool "saved" true (contains "saved" (Shell.eval shell ("save " ^ path)));
  let shell2 = ok (Shell.create ()) in
  check bool "loaded" true
    (contains "1 decisions" (Shell.eval shell2 ("load " ^ path)));
  Sys.remove path;
  check bool "loaded state browsable" true
    (contains "created by dec1" (Shell.eval shell2 "why InvitationRel"))

let test_quit_detection () =
  check bool "quit" true (Shell.is_quit "quit");
  check bool "exit" true (Shell.is_quit " EXIT ");
  check bool "not quit" false (Shell.is_quit "map")

(* two sessions on one repository: browsing state must not bleed over *)
let test_per_session_cursor () =
  let st = ok (Gkbms.Scenario.setup ()) in
  let repo = st.Gkbms.Scenario.repo in
  let a = Shell.session repo and b = Shell.session repo in
  ignore (Shell.eval a "map");
  ignore (Shell.eval a "focus InvitationRel");
  check bool "a has a cursor" true
    (contains "created by dec1" (Shell.eval a "why"));
  check bool "b has no cursor" true
    (contains "no focus set" (Shell.eval b "why"));
  ignore (Shell.eval b "focus Papers");
  check bool "b cursor independent" true
    (contains "focus: Papers" (Shell.eval b "focus"));
  check bool "a cursor unchanged" true
    (contains "focus: InvitationRel" (Shell.eval a "focus"))

let test_per_session_config_level () =
  let st = ok (Gkbms.Scenario.setup ()) in
  let repo = st.Gkbms.Scenario.repo in
  let a = Shell.session repo and b = Shell.session repo in
  ignore (Shell.eval a "map");
  let a_config = Shell.eval a "config" in
  (* b switches its configuration level; a's view must be unaffected *)
  ignore (Shell.eval b "config NoSuchLevel");
  check Alcotest.string "a config level untouched by b" a_config
    (Shell.eval a "config")

(* the scenario shortcuts must see versions created by other sessions *)
let test_cross_session_version_advance () =
  let st = ok (Gkbms.Scenario.setup ()) in
  let repo = st.Gkbms.Scenario.repo in
  let a = Shell.session repo and b = Shell.session repo in
  check bool "a maps" true (contains "dec1" (Shell.eval a "map"));
  check bool "a normalizes" true
    (contains "InvitationRel2" (Shell.eval a "normalize"));
  (* b never saw InvitationRel2 being created, but key must target it *)
  check bool "b keys the latest version" true
    (contains "InvitationRel3" (Shell.eval b "key"))

let test_shared_session_refuses_load () =
  let st = ok (Gkbms.Scenario.setup ()) in
  let shell = Shell.session st.Gkbms.Scenario.repo in
  let refusal = Shell.eval shell "load /tmp/nonexistent.repo" in
  check bool "load refused" true (contains "error: load is unavailable" refusal);
  (* the message must say why: the repository is shared, and load would
     swap it out from under the other sessions/followers *)
  check bool "refusal names the shared repository" true
    (contains "shares one repository" refusal);
  check bool "refusal names the consequence" true
    (contains "swap it out" refusal);
  check bool "refusal suggests a remedy" true
    (contains "standalone shell" refusal);
  (* a private shell still loads (see save-and-load above) *)
  check bool "map still works" true (contains "dec1" (Shell.eval shell "map"))

(* golden transcript: the whole storyline through the dialog manager.
   why/history are excluded (they print belief times from the global
   clock), and config is excluded (its member order depends on global
   symbol-table state); everything here depends only on repository
   content. *)
let golden_script =
  [
    "help"; "unmapped"; "map"; "focus InvitationRel"; "menu"; "source";
    "normalize"; "key"; "check"; "minutes"; "check"; "resolve";
    "deps Papers"; "ask forall x/Normalized_DBPL_Rel in(?x, DBPL_Rel)";
    "derive in(MinuteRel, ?C)"; "stats";
  ]

let transcript () =
  let shell = ok (Shell.create ()) in
  String.concat ""
    (List.map
       (fun line ->
         let out = Shell.eval shell line in
         Printf.sprintf "gkbms> %s\n%s\n" line out)
       golden_script)

(* comma-separated listings (configuration members, unmapped objects)
   are rendered in symbol-table order, which depends on how many symbols
   the process interned before this test ran; compare them as sets *)
let normalize_transcript s =
  let sort_csv s =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.sort compare
    |> String.concat ", "
  in
  let normalize_line line =
    if not (String.contains line ',') then line
    else
      match String.index_opt line ':' with
      | Some i ->
        (* keep the "members:"-style label, sort the list after it *)
        String.sub line 0 (i + 1)
        ^ " "
        ^ sort_csv (String.sub line (i + 1) (String.length line - i - 1))
      | None -> sort_csv line
  in
  String.split_on_char '\n' s
  |> List.map normalize_line
  |> String.concat "\n"

let test_golden_transcript () =
  let got = transcript () in
  match Sys.getenv_opt "GKBMS_GOLDEN_REGEN" with
  | Some path ->
    let oc = open_out path in
    output_string oc got;
    close_out oc
  | None ->
    let golden =
      (* dune runtest runs in test/, dune exec in the project root *)
      List.find_opt Sys.file_exists
        [ "shell_session.golden"; "test/shell_session.golden" ]
      |> Option.value ~default:"shell_session.golden"
    in
    let want = In_channel.with_open_text golden In_channel.input_all in
    if normalize_transcript got <> normalize_transcript want then begin
      (* show the first diverging line to make failures diagnosable *)
      let gl = String.split_on_char '\n' (normalize_transcript got)
      and wl = String.split_on_char '\n' (normalize_transcript want) in
      let rec first_diff i = function
        | g :: gs, w :: ws ->
          if g = w then first_diff (i + 1) (gs, ws)
          else Alcotest.failf "transcript line %d differs:\n  got:  %s\n  want: %s" i g w
        | g :: _, [] -> Alcotest.failf "transcript longer at line %d: %s" i g
        | [], w :: _ -> Alcotest.failf "transcript shorter at line %d: %s" i w
        | [], [] -> ()
      in
      first_diff 1 (gl, wl);
      Alcotest.fail "transcript differs"
    end

let suite =
  [
    ("session runs the storyline", `Quick, test_session_runs_the_storyline);
    ("browsing commands", `Quick, test_browsing_commands);
    ("ask and derive", `Quick, test_ask_and_derive);
    ("generic run command", `Quick, test_run_generic_decision);
    ("error recovery", `Quick, test_error_recovery);
    ("save and load", `Quick, test_save_and_load);
    ("quit detection", `Quick, test_quit_detection);
    ("per-session cursor", `Quick, test_per_session_cursor);
    ("per-session config level", `Quick, test_per_session_config_level);
    ("cross-session version advance", `Quick, test_cross_session_version_advance);
    ("shared session refuses load", `Quick, test_shared_session_refuses_load);
    ("golden transcript", `Quick, test_golden_transcript);
  ]
