(* Differential tests for incremental Datalog maintenance: after any
   sequence of fact insertions and removals applied to a solved engine,
   the materialization must equal a from-scratch [solve] on a fresh copy
   of the final database — under both bottom-up strategies. *)

open Logic
module T = Term

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let v = T.var
let s = T.sym

(* path/2 over edge/2, plus a comparison rule: positive (monotone)
   program, so updates must stay on the incremental path *)
let path_rules =
  [
    T.clause (T.atom "path" [ v "X"; v "Y" ])
      [ T.Pos (T.atom "edge" [ v "X"; v "Y" ]) ];
    T.clause (T.atom "path" [ v "X"; v "Y" ])
      [ T.Pos (T.atom "edge" [ v "X"; v "Z" ]);
        T.Pos (T.atom "path" [ v "Z"; v "Y" ]) ];
    T.clause (T.atom "ord" [ v "X"; v "Y" ])
      [ T.Pos (T.atom "path" [ v "X"; v "Y" ]); T.Cmp (T.Lt, v "X", v "Y") ];
  ]

let mk_program rules =
  let d = Datalog.create () in
  List.iter (fun c -> ok (Datalog.add_clause d c)) rules;
  d

let node i = Printf.sprintf "n%d" i
let edge i j = T.atom "edge" [ s (node i); s (node j) ]

let canon tuples =
  List.sort String.compare
    (List.map
       (fun tup -> String.concat "," (List.map (Format.asprintf "%a" T.pp) tup))
       tuples)

let same_facts ?(preds = [ "edge"; "path"; "ord" ]) da db =
  List.for_all
    (fun p ->
      let p = Kernel.Symbol.intern p in
      canon (Datalog.facts_of da p) = canon (Datalog.facts_of db p))
    preds

(* replay the final fact set of [ops] into a fresh engine *)
let from_scratch ?strategy rules ops =
  let live = Hashtbl.create 16 in
  List.iter
    (fun ((i, j), add) ->
      if add then Hashtbl.replace live (i, j) true
      else Hashtbl.remove live (i, j))
    ops;
  let d = mk_program rules in
  Hashtbl.iter (fun (i, j) _ -> ok (Datalog.add_fact d (edge i j))) live;
  ok (Datalog.solve ?strategy d);
  d

let test_incremental_insert () =
  let d = mk_program path_rules in
  List.iter (fun i -> ok (Datalog.add_fact d (edge i (i + 1)))) [ 0; 1; 2 ];
  ok (Datalog.solve d);
  let solves_before = (Datalog.stats d).Datalog.full_solves in
  ok (Datalog.add_fact d (edge 3 4));
  let stats = Datalog.stats d in
  check int "no re-solve" solves_before stats.Datalog.full_solves;
  check int "one incremental insert" 1 stats.Datalog.incr_inserts;
  check int "no fallback" 0 stats.Datalog.fallbacks;
  let reach = ok (Datalog.query d (T.atom "path" [ s "n0"; v "Y" ])) in
  check int "n0 reaches 4 nodes" 4 (List.length reach);
  check int "still one full solve" solves_before
    ((Datalog.stats d).Datalog.full_solves);
  let fresh = from_scratch path_rules (List.map (fun i -> ((i, i + 1), true)) [ 0; 1; 2; 3 ]) in
  check bool "insert matches from-scratch" true (same_facts d fresh)

let test_incremental_delete_rederive () =
  (* diamond: a->b->d and a->c->d; deleting b->d must keep path(a,d)
     alive through the alternative derivation *)
  let d = mk_program path_rules in
  List.iter
    (fun (i, j) -> ok (Datalog.add_fact d (edge i j)))
    [ (0, 1); (1, 3); (0, 2); (2, 3) ];
  ok (Datalog.solve d);
  ok (Datalog.remove_fact d (edge 1 3));
  let stats = Datalog.stats d in
  check int "one incremental delete" 1 stats.Datalog.incr_deletes;
  check int "no fallback" 0 stats.Datalog.fallbacks;
  check bool "path(n0,n3) survives via n2" true
    (ok (Datalog.query d (T.atom "path" [ s "n0"; s "n3" ])) <> []);
  check bool "path(n1,n3) gone" true
    (ok (Datalog.query d (T.atom "path" [ s "n1"; s "n3" ])) = []);
  let fresh =
    from_scratch path_rules
      [ ((0, 1), true); ((1, 3), true); ((0, 2), true); ((2, 3), true);
        ((1, 3), false) ]
  in
  check bool "delete matches from-scratch" true (same_facts d fresh)

let test_incremental_chain_delete () =
  (* cutting a chain removes the whole suffix's reachability from n0 *)
  let d = mk_program path_rules in
  List.iter (fun i -> ok (Datalog.add_fact d (edge i (i + 1)))) [ 0; 1; 2; 3; 4 ];
  ok (Datalog.solve d);
  ok (Datalog.remove_fact d (edge 2 3));
  let reach = ok (Datalog.query d (T.atom "path" [ s "n0"; v "Y" ])) in
  check int "n0 reaches n1,n2 only" 2 (List.length reach);
  let fresh =
    from_scratch path_rules
      (List.map (fun i -> ((i, i + 1), true)) [ 0; 1; 2; 3; 4 ]
      @ [ ((2, 3), false) ])
  in
  check bool "chain cut matches from-scratch" true (same_facts d fresh)

let test_duplicate_and_absent_are_noops () =
  let d = mk_program path_rules in
  ok (Datalog.add_fact d (edge 0 1));
  ok (Datalog.solve d);
  ok (Datalog.add_fact d (edge 0 1));
  ok (Datalog.remove_fact d (edge 5 6));
  let stats = Datalog.stats d in
  check int "no incremental work" 0
    (stats.Datalog.incr_inserts + stats.Datalog.incr_deletes);
  check int "no fallback" 0 stats.Datalog.fallbacks;
  check int "path intact" 1 (List.length (ok (Datalog.query d (T.atom "path" [ v "X"; v "Y" ]))))

let test_negation_falls_back () =
  (* a negated literal makes updates nonmonotone: the engine must
     invalidate rather than run a (wrong) delta round, and re-solving
     must still agree with from-scratch evaluation *)
  let rules =
    path_rules
    @ [
        T.clause (T.atom "isolated" [ v "X" ])
          [ T.Pos (T.atom "node" [ v "X" ]);
            T.Neg (T.atom "path" [ s "n0"; v "X" ]) ];
      ]
  in
  let d = mk_program rules in
  List.iter
    (fun i -> ok (Datalog.add_fact d (T.atom "node" [ s (node i) ])))
    [ 0; 1; 2 ];
  ok (Datalog.add_fact d (edge 0 1));
  ok (Datalog.solve d);
  check int "n0 and n2 isolated" 2
    (List.length (ok (Datalog.query d (T.atom "isolated" [ v "X" ]))));
  ok (Datalog.add_fact d (edge 1 2));
  check bool "fell back to invalidation" true
    ((Datalog.stats d).Datalog.fallbacks > 0);
  (* adding the edge must retract isolated(n2): a pure delta round could
     never do that *)
  check int "only n0 isolated" 1
    (List.length (ok (Datalog.query d (T.atom "isolated" [ v "X" ]))))

let test_index_used () =
  let d = mk_program path_rules in
  List.iter (fun i -> ok (Datalog.add_fact d (edge i (i + 1)))) [ 0; 1; 2; 3 ];
  ok (Datalog.solve d);
  check bool "bound-first-arg joins hit the index" true
    ((Datalog.stats d).Datalog.index_hits > 0)

let test_delete_rederive_counters_isolated () =
  (* delete-rederive internally re-runs rule joins; those lookups must
     not pollute the hit/miss counters, which report the *query*
     workload's index effectiveness *)
  let d = mk_program path_rules in
  List.iter
    (fun (i, j) -> ok (Datalog.add_fact d (edge i j)))
    [ (0, 1); (1, 3); (0, 2); (2, 3) ];
  ok (Datalog.solve d);
  let before = Datalog.stats d in
  ok (Datalog.remove_fact d (edge 1 3));
  let after = Datalog.stats d in
  check int "one incremental delete" 1 after.Datalog.incr_deletes;
  check bool "DRed ran delta rounds" true
    (after.Datalog.delta_rounds > before.Datalog.delta_rounds);
  check int "index_hits untouched by DRed" before.Datalog.index_hits
    after.Datalog.index_hits;
  check int "index_misses untouched by DRed" before.Datalog.index_misses
    after.Datalog.index_misses

(* Randomized differential test: arbitrary insert/remove interleavings
   on a solved engine agree with from-scratch naive and seminaive
   evaluation of the final state. *)
let prop_incremental_differential =
  QCheck.Test.make ~name:"incremental = from-scratch (naive & seminaive)"
    ~count:120
    QCheck.(list (pair (pair (int_range 0 5) (int_range 0 5)) bool))
    (fun ops ->
      let d = mk_program path_rules in
      ok (Datalog.solve d);
      List.iter
        (fun ((i, j), add) ->
          if add then ok (Datalog.add_fact d (edge i j))
          else ok (Datalog.remove_fact d (edge i j)))
        ops;
      if (Datalog.stats d).Datalog.full_solves <> 1 then
        QCheck.Test.fail_reportf "engine re-solved instead of propagating";
      let semi = from_scratch ~strategy:`Seminaive path_rules ops in
      let naive = from_scratch ~strategy:`Naive path_rules ops in
      same_facts d semi && same_facts d naive)

let suite =
  [
    ("incremental insert", `Quick, test_incremental_insert);
    ("incremental delete rederives", `Quick, test_incremental_delete_rederive);
    ("incremental chain delete", `Quick, test_incremental_chain_delete);
    ("duplicate/absent updates are no-ops", `Quick,
     test_duplicate_and_absent_are_noops);
    ("negation falls back", `Quick, test_negation_falls_back);
    ("first-arg index used", `Quick, test_index_used);
    ("delete-rederive leaves hit/miss counters alone", `Quick,
     test_delete_rederive_counters_isolated);
    QCheck_alcotest.to_alcotest prop_incremental_differential;
  ]
