let () =
  Alcotest.run "gkbms"
    [
      ("kernel", Test_kernel.suite);
      ("store", Test_store.suite);
      ("arena", Test_arena.suite);
      ("graph", Test_graph.suite);
      ("temporal", Test_temporal.suite);
      ("logic", Test_logic.suite);
      ("incremental", Test_incremental.suite);
      ("tms", Test_tms.suite);
      ("cml", Test_cml.suite);
      ("langs", Test_langs.suite);
      ("gkbms", Test_gkbms.suite);
      ("group", Test_group.suite);
      ("dbpl-eval", Test_dbpl_eval.suite);
      ("assertion", Test_assertion.suite);
      ("requirements", Test_requirements.suite);
      ("context", Test_context.suite);
      ("persist", Test_persist.suite);
      ("durability", Test_durability.suite);
      ("methodology", Test_methodology.suite);
      ("properties", Test_properties.suite);
      ("integration", Test_integration.suite);
      ("negotiation", Test_negotiation.suite);
      ("shell", Test_shell.suite);
      ("server", Test_server.suite);
      ("replication", Test_replication.suite);
      ("coverage", Test_coverage.suite);
      ("obs", Test_obs.suite);
      ("planner", Test_planner.suite);
      ("par", Test_par.suite);
    ]
