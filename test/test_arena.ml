(* The columnar arena backend: differential equivalence against the
   hash-indexed oracle ({!Store.Mem_store} behind [`Mem]), physical-row
   bookkeeping (free list, tombstones, compaction), and multi-domain
   read safety. *)

open Kernel
open Store

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let sym = Symbol.intern

let mk ?(time = Time.always) ?(belief = 0) id source label dest =
  Prop.make ~time ~belief ~id:(sym id) ~source:(sym source)
    ~label:(sym label) ~dest:(sym dest) ()

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let ids props =
  List.sort String.compare
    (List.map (fun (p : Prop.t) -> Symbol.name p.id) props)

let canon base =
  List.sort compare (String.split_on_char '\n' (Base.to_serialized base))

(* -- direct Arena_store unit tests -------------------------------------- *)

let test_row_reuse () =
  let module Ar = Arena_store in
  let st = Ar.create () in
  ignore (Ar.insert st (mk "w1" "a" "l" "b"));
  ignore (Ar.insert st (mk "w2" "a" "l" "b"));
  check int "two physical rows" 2 (Ar.physical_rows st);
  ignore (Ar.remove st (sym "w1"));
  (* the tombstoned row is reused before the prefix extends *)
  ignore (Ar.insert st (mk "w3" "a" "l" "b"));
  check int "row reused, prefix unchanged" 2 (Ar.physical_rows st);
  check int "cardinal" 2 (Ar.cardinal st);
  check bool "w1 gone" false (Ar.mem st (sym "w1"));
  check bool "w3 present" true (Ar.mem st (sym "w3"))

let test_chain_drain () =
  let module Ar = Arena_store in
  let st = Ar.create () in
  (* fill and fully drain many distinct (source,label) chains so drained
     hash slots are tombstoned and then reused by later inserts *)
  for round = 0 to 3 do
    for i = 0 to 199 do
      let s = Printf.sprintf "ds%d" i in
      ignore
        (Ar.insert st
           (mk (Printf.sprintf "dp%d_%d" round i) s "dl"
              (Printf.sprintf "dd%d" (i mod 7))))
    done;
    for i = 0 to 199 do
      ignore (Ar.remove st (sym (Printf.sprintf "dp%d_%d" round i)))
    done;
    check int "drained" 0 (Ar.cardinal st);
    List.iter
      (fun i ->
        check int "drained source chain empty" 0
          (List.length (Ar.by_source st (sym (Printf.sprintf "ds%d" i)))))
      [ 0; 50; 199 ]
  done;
  (* free-list reuse kept the physical prefix at one round's worth *)
  check bool "prefix stayed small" true (Ar.physical_rows st <= 200);
  (* now grow the prefix past the compaction floor and drain most of it:
     the arena must rebuild densely *)
  for i = 0 to 1999 do
    ignore (Ar.insert st (mk (Printf.sprintf "cp%d" i) "cs" "cl" "cd"))
  done;
  for i = 0 to 1899 do
    ignore (Ar.remove st (sym (Printf.sprintf "cp%d" i)))
  done;
  check bool "compacted at least once" true (Ar.compaction_count st > 0);
  check bool "prefix collapsed" true (Ar.physical_rows st < 1024);
  check int "survivors intact" 100 (Ar.cardinal st);
  check bool "survivor findable" true (Ar.mem st (sym "cp1950"))

let test_named_time_roundtrip () =
  let module Ar = Arena_store in
  let st = Ar.create () in
  let times =
    [ Time.always; Time.at 7; Time.from 3; Time.between 2 9;
      Time.named "version17" 1 8 ]
  in
  List.iteri
    (fun i time ->
      ignore (Ar.insert st (mk ~time ~belief:i (Printf.sprintf "t%d" i) "a" "l" "b")))
    times;
  List.iteri
    (fun i time ->
      match Ar.find st (sym (Printf.sprintf "t%d" i)) with
      | Some p ->
        check bool "time round-trips" true (Time.equal p.Prop.time time);
        check int "belief round-trips" i p.Prop.belief
      | None -> Alcotest.fail "missing row")
    times

let test_insert_batch_and_scans () =
  let module Ar = Arena_store in
  let st = Ar.create () in
  let props =
    List.init 500 (fun i ->
        mk (Printf.sprintf "bb%d" i)
          (Printf.sprintf "bs%d" (i mod 10))
          "blab"
          (Printf.sprintf "bd%d" (i mod 3)))
  in
  let inserted = Ar.insert_batch st (props @ [ List.hd props ]) in
  check int "batch skips the duplicate" 500 (List.length inserted);
  check int "cardinal" 500 (Ar.cardinal st);
  check int "fold_ids counts" 500 (Ar.fold_ids st (fun n _ -> n + 1) 0);
  let links =
    Ar.fold_links st
      (fun n _ src _ _ -> if Symbol.equal src (sym "bs3") then n + 1 else n)
      0
  in
  check int "fold_links filters on source" 50 links;
  let via_iter = ref 0 in
  Ar.iter_by_label st (sym "blab") (fun _ -> incr via_iter);
  check int "iter_by_label walks the chain" 500 !via_iter

(* -- differential: arena == mem under random interleavings --------------- *)

(* Interpret each int as one operation on both bases: weighted
   insert/remove plus transaction begin/rollback/commit, with fresh
   symbols minted mid-run (ids cycle through a window that grows with
   the op index, so removal churn and never-seen ids both occur). *)
let prop_arena_matches_mem =
  QCheck.Test.make ~name:"arena == mem under tx interleavings" ~count:150
    QCheck.(list (int_range 0 99_999))
    (fun ops ->
      let mem = Base.create ~backend:`Mem () in
      let arena = Base.create ~backend:`Arena () in
      let step = ref 0 in
      let apply base n =
        let id = Printf.sprintf "aq%d" (n mod 24) in
        match n mod 100 with
        | op when op < 45 ->
          ignore
            (Base.insert base
               (mk ~time:(Time.at (n mod 11)) ~belief:(n mod 3) id
                  (Printf.sprintf "as%d" (n mod 6))
                  (Printf.sprintf "al%d" (n mod 4))
                  (Printf.sprintf "ad%d" (n mod 5))))
        | op when op < 55 ->
          (* a symbol interned mid-run, after both stores exist *)
          ignore
            (Base.insert base
               (mk (Printf.sprintf "fresh%d_%d" !step (n mod 7))
                  (Printf.sprintf "fs%d" !step) "al0" "ad0"))
        | op when op < 85 -> ignore (Base.remove base (sym id))
        | op when op < 90 -> Base.begin_tx base
        | op when op < 95 -> ignore (Base.rollback base)
        | _ -> ignore (Base.commit base)
      in
      List.iter
        (fun n ->
          incr step;
          apply mem n;
          apply arena n)
        ops;
      (* close any transactions left open so the views are final *)
      let rec drain base =
        if Base.tx_depth base > 0 then begin
          ignore (Base.rollback base);
          drain base
        end
      in
      drain mem;
      drain arena;
      let views base =
        ( canon base,
          Base.cardinal base,
          ids (Base.by_source base (sym "as1")),
          ids (Base.by_source_label base (sym "as2") (sym "al1")),
          ids (Base.by_dest base (sym "ad3")),
          ids (Base.by_label base (sym "al2")),
          ids (Base.query ~source:(sym "as0") ~valid_at:4 base),
          Base.fold_ids base (fun n _ -> n + 1) 0 )
      in
      views mem = views arena)

(* -- multi-domain reads -------------------------------------------------- *)

let test_parallel_reads () =
  (* one writer-free phase: 4 domains hammer a populated arena with
     point lookups, index walks and column scans; every answer must
     match the sequentially computed expectation *)
  let base = Base.create ~backend:`Arena () in
  let n = 5_000 in
  ignore
    (Base.insert_batch base
       (List.init n (fun i ->
            mk (Printf.sprintf "pr%d" i)
              (Printf.sprintf "prs%d" (i mod 40))
              (Printf.sprintf "prl%d" (i mod 8))
              (Printf.sprintf "prd%d" (i mod 13)))));
  let expect_src = ids (Base.by_source base (sym "prs7")) in
  let expect_lbl = List.length (Base.by_label base (sym "prl3")) in
  let worker seed () =
    let errs = ref 0 in
    for i = 0 to 999 do
      let k = (i * seed) mod n in
      (match Base.find base (sym (Printf.sprintf "pr%d" k)) with
      | Some p ->
        if not (Symbol.equal p.Prop.source (sym (Printf.sprintf "prs%d" (k mod 40))))
        then incr errs
      | None -> incr errs);
      if i mod 100 = 0 then begin
        if ids (Base.by_source base (sym "prs7")) <> expect_src then incr errs;
        if List.length (Base.by_label base (sym "prl3")) <> expect_lbl then
          incr errs;
        if Base.fold_ids base (fun n _ -> n + 1) 0 <> n then incr errs
      end
    done;
    !errs
  in
  let domains = List.init 4 (fun k -> Domain.spawn (worker (k + 1))) in
  let errs = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  check int "no read anomalies across 4 domains" 0 errs

let suite =
  [
    ("arena row reuse", `Quick, test_row_reuse);
    ("arena chain drain and compaction", `Quick, test_chain_drain);
    ("arena named-time roundtrip", `Quick, test_named_time_roundtrip);
    ("arena insert_batch and scans", `Quick, test_insert_batch_and_scans);
    QCheck_alcotest.to_alcotest prop_arena_matches_mem;
    ("arena 4-domain concurrent reads", `Quick, test_parallel_reads);
  ]
