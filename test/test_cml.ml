open Kernel
module Kb = Cml.Kb
module Op = Cml.Object_processor
module Cons = Cml.Consistency
module Model = Cml.Model
module Display = Cml.Display
module Term = Logic.Term
module Formula = Logic.Formula

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let sym = Symbol.intern

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let names ids = List.sort String.compare (List.map Symbol.name ids)

(* The running example of the paper: a document model. *)
let document_kb () =
  let kb = Kb.create () in
  List.iter
    (fun n -> ignore (ok (Kb.declare kb n)))
    [ "TDL_EntityClass"; "Document"; "Paper"; "Invitation"; "Minutes";
      "Person" ];
  List.iter
    (fun i -> ignore (ok (Kb.add_instanceof kb ~inst:i ~cls:"TDL_EntityClass")))
    [ "Document"; "Paper"; "Invitation"; "Minutes" ];
  ignore (ok (Kb.add_isa kb ~sub:"Paper" ~super:"Document"));
  ignore (ok (Kb.add_isa kb ~sub:"Invitation" ~super:"Paper"));
  ignore (ok (Kb.add_isa kb ~sub:"Minutes" ~super:"Paper"));
  ignore
    (ok (Kb.add_attribute kb ~source:"Invitation" ~label:"sender" ~dest:"Person"));
  kb

let test_bootstrap () =
  let kb = Kb.create () in
  check bool "PROPOSITION exists" true (Kb.exists kb "PROPOSITION");
  check bool "CLASS exists" true (Kb.exists kb "CLASS");
  check bool "CLASS is self-instance" true
    (List.exists (Symbol.equal (sym "CLASS")) (Kb.classes_of kb (sym "CLASS")));
  check bool "bootstrap consistent" true (Cons.check_all kb = [])

let test_declare_idempotent () =
  let kb = Kb.create () in
  let a = ok (Kb.declare kb "Invitation") in
  let b = ok (Kb.declare kb "Invitation") in
  check bool "same id" true (Symbol.equal a b)

let test_instanceof_requires_endpoints () =
  let kb = Kb.create () in
  match Kb.add_instanceof kb ~inst:"ghost" ~cls:"CLASS" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling instanceof accepted"

let test_classification () =
  let kb = document_kb () in
  check Alcotest.(list string) "classes of Invitation" [ "TDL_EntityClass" ]
    (names (Kb.classes_of kb (sym "Invitation")));
  check Alcotest.(list string) "direct instances"
    [ "Document"; "Invitation"; "Minutes"; "Paper" ]
    (names (Kb.instances_of kb (sym "TDL_EntityClass")));
  check bool "is_instance via class" true
    (Kb.is_instance kb ~inst:(sym "Invitation") ~cls:(sym "TDL_EntityClass"))

let test_specialization () =
  let kb = document_kb () in
  check Alcotest.(list string) "supers of Invitation" [ "Paper" ]
    (names (Kb.isa_supers kb (sym "Invitation")));
  check Alcotest.(list string) "isa closure"
    [ "Document"; "Paper" ]
    (names (Kb.isa_closure kb (sym "Invitation")))

let test_isa_cycle_rejected () =
  let kb = document_kb () in
  match Kb.add_isa kb ~sub:"Document" ~super:"Invitation" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "isa cycle accepted"

let test_isa_self_rejected () =
  let kb = document_kb () in
  match Kb.add_isa kb ~sub:"Paper" ~super:"Paper" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reflexive isa accepted"

let test_all_instances_through_subclasses () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  check Alcotest.(list string) "instances of Paper include inv1" [ "inv1" ]
    (names (Kb.all_instances_of kb (sym "Paper")));
  check bool "inv1 is a Document" true
    (Kb.is_instance kb ~inst:(sym "inv1") ~cls:(sym "Document"))

let test_attributes () =
  let kb = document_kb () in
  let attrs = Kb.attributes kb (sym "Invitation") in
  check int "one attribute" 1 (List.length attrs);
  check Alcotest.(list string) "attribute values" [ "Person" ]
    (names (Kb.attribute_values kb (sym "Invitation") "sender"))

let test_attribute_reserved_label_rejected () =
  let kb = document_kb () in
  match Kb.add_attribute kb ~source:"Invitation" ~label:"isa" ~dest:"Paper" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reserved label accepted as attribute"

let test_attribute_instantiation_principle () =
  (* instance-level attribute classified under the class-level category *)
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.declare kb "jarke"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  ignore (ok (Kb.add_instanceof kb ~inst:"jarke" ~cls:"Person"));
  let p =
    ok
      (Kb.add_attribute kb ~category:"sender" ~source:"inv1" ~label:"sender"
         ~dest:"jarke")
  in
  match Kb.category_of kb p.Prop.id with
  | Some cat -> (
    match Kb.find kb cat with
    | Some cp ->
      check bool "category is the class-level sender attribute" true
        (Symbol.equal cp.Prop.source (sym "Invitation")
        && Symbol.equal cp.Prop.label (sym "sender"))
    | None -> Alcotest.fail "category object missing")
  | None -> Alcotest.fail "attribute not classified"

let test_attributes_by_category () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.declare kb "jarke"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  ignore
    (ok
       (Kb.add_attribute kb ~category:"sender" ~source:"inv1" ~label:"sender"
          ~dest:"jarke"));
  check int "by category" 1
    (List.length (Kb.attributes kb ~category:"sender" (sym "inv1")))

(* deduction ------------------------------------------------------------- *)

let test_deductive_view_inheritance () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  let substs =
    ok (Kb.derive kb (Term.atom "in" [ Term.sym "inv1"; Term.var "C" ]))
  in
  let classes =
    List.sort_uniq compare
      (List.map
         (fun s -> Format.asprintf "%a" Term.pp (Term.Subst.apply s (Term.var "C")))
         substs)
  in
  check Alcotest.(list string) "deduced classification"
    [ "Document"; "Invitation"; "Paper" ]
    classes

let test_user_rule () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.declare kb "jarke"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  ignore
    (ok (Kb.add_attribute kb ~source:"inv1" ~label:"sender" ~dest:"jarke"));
  ok
    (Kb.add_rule kb ~name:"SenderRule"
       (Term.clause
          (Term.atom "sends" [ Term.var "P"; Term.var "I" ])
          [ Term.Pos (Term.atom "attr" [ Term.var "I"; Term.sym "sender"; Term.var "P" ]) ]));
  let substs =
    ok (Kb.derive kb (Term.atom "sends" [ Term.var "P"; Term.sym "inv1" ]))
  in
  check int "one sender deduced" 1 (List.length substs);
  check bool "rule object recorded" true (Kb.exists kb "SenderRule")

let test_ask_formula () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  check bool "every Paper instance is a Document instance" true
    (ok
       (Kb.ask kb
          (Formula.Forall
             ("x", sym "Paper",
              Formula.Atom (Term.atom "in" [ Term.var "x"; Term.sym "Document" ])))));
  check bool "no Minutes instances yet" false
    (ok
       (Kb.ask kb
          (Formula.Exists
             ("x", sym "Minutes",
              Formula.Atom (Term.atom "in" [ Term.var "x"; Term.sym "Paper" ])))))

(* behaviours ------------------------------------------------------------ *)

let test_behaviours () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  let log = ref [] in
  ok
    (Kb.add_behaviour kb ~cls:"Paper" ~event:"display" (fun _kb obj ->
         log := Symbol.name obj :: !log));
  let ran = ok (Kb.trigger kb (sym "inv1") "display") in
  check int "inherited behaviour ran" 1 ran;
  check Alcotest.(list string) "behaviour saw the object" [ "inv1" ] !log;
  let ran2 = ok (Kb.trigger kb (sym "inv1") "create") in
  check int "no such event" 0 ran2

(* object processor ------------------------------------------------------ *)

let test_frame_store_retrieve_roundtrip () =
  let kb = document_kb () in
  let f =
    Op.frame ~classes:[ "TDL_EntityClass" ] ~supers:[ "Paper" ]
      ~attrs:[ ("receivers", "Person"); ("venue", "Place") ]
      "Workshop"
  in
  let id = ok (Op.store kb f) in
  let g = ok (Op.retrieve kb id) in
  check bool "roundtrip equal" true (Op.equal_modulo_order f g);
  check bool "consistent" true (Cons.check_all kb = [])

let test_frame_store_idempotent () =
  let kb = document_kb () in
  let f =
    Op.frame ~classes:[ "TDL_EntityClass" ] ~attrs:[ ("a", "Person") ] "X"
  in
  ignore (ok (Op.store kb f));
  let before = Store.Base.cardinal (Kb.base kb) in
  ignore (ok (Op.store kb f));
  check int "no duplicates" before (Store.Base.cardinal (Kb.base kb))

let test_frame_pp () =
  let f =
    Op.frame ~classes:[ "TDL_EntityClass" ] ~supers:[ "Paper" ]
      ~attrs:[ ("sender", "Person") ]
      "Invitation"
  in
  let text = Format.asprintf "%a" Op.pp f in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec loop i = i + nl <= hl && (String.sub hay i nl = needle || loop (i + 1)) in
    loop 0
  in
  check bool "header" true
    (contains "Class Invitation in TDL_EntityClass isA Paper with" text);
  check bool "attribute line" true (contains "sender : Person" text);
  check bool "end" true (contains "end" text)

let test_paper_fig_3_2 () =
  (* the Invitation example of fig 3-2: the frame expands to an
     individual, an instanceof link, and a classified attribute *)
  let kb = Kb.create () in
  ignore (ok (Kb.declare kb "TDL_EntityClass"));
  ignore (ok (Kb.declare kb "Person"));
  let f =
    Op.frame ~classes:[ "TDL_EntityClass" ] ~attrs:[ ("sender", "Person") ]
      "Invitation"
  in
  let id = ok (Op.store kb f) in
  let props = Store.Base.by_source (Kb.base kb) id in
  (* individual + instanceof + attribute *)
  check int "three propositions from Invitation" 3 (List.length props);
  check bool "instanceof present" true
    (List.exists
       (fun (p : Prop.t) ->
         Symbol.equal p.label (sym "instanceof")
         && Symbol.equal p.dest (sym "TDL_EntityClass"))
       props);
  check bool "attribute present" true
    (List.exists
       (fun (p : Prop.t) ->
         Symbol.equal p.label (sym "sender") && Symbol.equal p.dest (sym "Person"))
       props)

(* consistency ------------------------------------------------------------ *)

let test_consistency_clean () =
  let kb = document_kb () in
  check Alcotest.(list string) "no violations" []
    (List.map (fun v -> v.Cons.rule) (Cons.check_all kb))

let test_consistency_dangling_reference () =
  let kb = document_kb () in
  (* bypass the axiom checks by inserting directly into the base *)
  let p =
    Prop.make ~id:(Prop.fresh_id ()) ~source:(sym "Invitation")
      ~label:(sym "about") ~dest:(sym "NoSuchThing") ()
  in
  ignore (Store.Base.insert (Kb.base kb) p);
  let rules = List.map (fun v -> v.Cons.rule) (Cons.check_all kb) in
  check bool "referential violation found" true
    (List.mem "referential-integrity" rules)

let test_consistency_attribute_conformance () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.declare kb "notAPerson"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  (* classify the attribute under the sender category although the target
     is not a Person *)
  let p =
    ok
      (Kb.add_attribute kb ~category:"sender" ~source:"inv1" ~label:"sender"
         ~dest:"notAPerson")
  in
  ignore p;
  let rules = List.map (fun v -> v.Cons.rule) (Cons.check_all kb) in
  check bool "conformance violation" true (List.mem "attribute-conformance" rules)

let test_consistency_unclassified_attribute () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.declare kb "jarke"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  (* raw insert of a sender attribute with no instanceof link *)
  let p =
    Prop.make ~id:(Prop.fresh_id ()) ~source:(sym "inv1") ~label:(sym "sender")
      ~dest:(sym "jarke") ()
  in
  ignore (Store.Base.insert (Kb.base kb) p);
  let rules = List.map (fun v -> v.Cons.rule) (Cons.check_all kb) in
  check bool "classification violation" true
    (List.mem "attribute-classification" rules)

let test_consistency_temporal () =
  let kb = Kb.create () in
  ignore (ok (Kb.declare ~time:(Time.between 0 5) kb "shortLived"));
  ignore (ok (Kb.declare kb "Other"));
  ignore
    (ok
       (Kb.add_attribute ~time:(Time.between 3 9) kb ~source:"shortLived"
          ~label:"ref" ~dest:"Other"));
  let rules = List.map (fun v -> v.Cons.rule) (Cons.check_all kb) in
  check bool "temporal violation" true (List.mem "temporal-containment" rules)

let test_consistency_class_constraint () =
  let kb = document_kb () in
  ok
    (Kb.add_constraint kb ~name:"InvitationHasSender" ~cls:"Invitation"
       (Formula.Forall
          ("i", sym "Invitation",
           Formula.Exists
             ("p", sym "Person",
              Formula.Atom
                (Term.atom "attr" [ Term.var "i"; Term.sym "sender"; Term.var "p" ])))));
  check bool "vacuously satisfied" true
    (List.for_all
       (fun v -> v.Cons.rule <> "class-constraint")
       (Cons.check_all kb));
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  let rules = List.map (fun v -> v.Cons.rule) (Cons.check_all kb) in
  check bool "violated once an instance lacks a sender" true
    (List.mem "class-constraint" rules);
  ignore (ok (Kb.declare kb "jarke"));
  ignore (ok (Kb.add_instanceof kb ~inst:"jarke" ~cls:"Person"));
  ignore
    (ok (Kb.add_attribute kb ~source:"inv1" ~label:"sender" ~dest:"jarke"));
  check bool "satisfied after repair" true
    (List.for_all
       (fun v -> v.Cons.rule <> "class-constraint")
       (Cons.check_all kb))

let test_consistency_incremental_agrees () =
  let kb = document_kb () in
  let drain = Cons.watch kb in
  ignore (ok (Kb.declare kb "inv1"));
  ignore (ok (Kb.add_instanceof kb ~inst:"inv1" ~cls:"Invitation"));
  let p =
    Prop.make ~id:(Prop.fresh_id ()) ~source:(sym "inv1") ~label:(sym "sender")
      ~dest:(sym "jarkeX") ()
  in
  ignore (Store.Base.insert (Kb.base kb) p);
  let delta = drain () in
  let inc = List.map (fun v -> v.Cons.rule) (Cons.check_delta kb delta) in
  let full = List.map (fun v -> v.Cons.rule) (Cons.check_all kb) in
  check bool "incremental finds the dangling reference" true
    (List.mem "referential-integrity" inc);
  check bool "incremental subset of full" true
    (List.for_all (fun r -> List.mem r full) inc)

let test_consistency_incremental_empty_delta () =
  let kb = document_kb () in
  check Alcotest.(list string) "empty delta, no violations" []
    (List.map (fun v -> v.Cons.rule) (Cons.check_delta kb []))

(* model configuration ----------------------------------------------------- *)

let test_model_basics () =
  let kb = document_kb () in
  let mb = Model.create kb in
  ok (Model.define mb "world");
  ok (Model.define mb "system");
  (match Model.define mb "world" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate model accepted");
  ok (Model.add_object mb ~model:"world" (sym "Document"));
  ok (Model.add_object mb ~model:"system" (sym "Invitation"));
  check Alcotest.(list string) "models" [ "system"; "world" ] (Model.models mb)

let test_model_includes_and_sharing () =
  let kb = document_kb () in
  let mb = Model.create kb in
  ok (Model.define mb "base");
  ok (Model.define mb "design");
  ok (Model.add_object mb ~model:"base" (sym "Document"));
  ok (Model.add_object mb ~model:"design" (sym "Invitation"));
  ok (Model.include_model mb ~model:"design" ~included:"base");
  let objs = ok (Model.objects mb "design") in
  check Alcotest.(list string) "transitive objects"
    [ "Document"; "Invitation" ]
    (names (Symbol.Set.elements objs));
  (match Model.include_model mb ~model:"base" ~included:"design" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "lattice cycle accepted");
  match Model.sharing mb with
  | sharing ->
    let design_sharers = List.assoc "design" sharing in
    check Alcotest.(list string) "sharing detected" [ "base" ] design_sharers

let test_model_configure_project () =
  let kb = document_kb () in
  let mb = Model.create kb in
  ok (Model.define mb "docs");
  List.iter
    (fun n -> ok (Model.add_object mb ~model:"docs" (sym n)))
    [ "Document"; "Paper"; "Invitation" ];
  ok (Model.configure mb [ "docs" ]);
  check bool "active" true (Model.is_active mb (sym "Paper"));
  check bool "inactive" false (Model.is_active mb (sym "Minutes"));
  let projected = ok (Model.project mb) in
  (* individuals Document, Paper, Invitation + isa links between them *)
  check int "projection size" 5 (Store.Base.cardinal projected);
  check bool "link kept" true
    (List.exists
       (fun (p : Prop.t) -> Symbol.equal p.dest (sym "Paper"))
       (Store.Base.by_source projected (sym "Invitation")))

(* closure caches ----------------------------------------------------------- *)

let test_closure_cache_hits () =
  let kb = document_kb () in
  ignore (Kb.all_classes_of kb (sym "Invitation"));
  let before = (Kb.cache_stats kb).Kb.hits in
  ignore (Kb.all_classes_of kb (sym "Invitation"));
  ignore (Kb.isa_closure kb (sym "Invitation"));
  ignore (Kb.isa_closure kb (sym "Invitation"));
  check bool "steady-state queries are cache hits" true
    ((Kb.cache_stats kb).Kb.hits > before)

let test_closure_cache_invalidation () =
  let kb = document_kb () in
  (* warm every cache *)
  check Alcotest.(list string) "closure before"
    [ "Document"; "Paper" ]
    (names (Kb.isa_closure kb (sym "Invitation")));
  ignore (Kb.all_instances_of kb (sym "Document"));
  (* grow the hierarchy above Document: cached closures must follow *)
  ignore (ok (Kb.declare kb "Artifact"));
  ignore (ok (Kb.add_isa kb ~sub:"Document" ~super:"Artifact"));
  check Alcotest.(list string) "closure sees new super"
    [ "Artifact"; "Document"; "Paper" ]
    (names (Kb.isa_closure kb (sym "Invitation")));
  check Alcotest.(list string) "instances inherited up"
    (names (Kb.all_instances_of kb (sym "Document")))
    (names (Kb.all_instances_of kb (sym "Artifact")));
  (* retract the new edge again *)
  let link =
    List.find
      (fun (p : Prop.t) -> Symbol.equal p.dest (sym "Artifact"))
      (Store.Base.by_source_label (Kb.base kb) (sym "Document") (sym "isa"))
  in
  ignore (ok (Kb.remove_proposition kb link.Prop.id));
  check Alcotest.(list string) "closure shrinks after removal"
    [ "Document"; "Paper" ]
    (names (Kb.isa_closure kb (sym "Invitation")));
  check bool "entries were invalidated" true
    ((Kb.cache_stats kb).Kb.invalidations > 0)

let test_closure_cache_instanceof_invalidation () =
  let kb = document_kb () in
  ignore (ok (Kb.declare kb "doc1"));
  ignore (Kb.all_classes_of kb (sym "doc1"));
  ignore (Kb.all_instances_of kb (sym "Document"));
  ignore (ok (Kb.add_instanceof kb ~inst:"doc1" ~cls:"Invitation"));
  check bool "new class visible through inheritance" true
    (Kb.is_instance kb ~inst:(sym "doc1") ~cls:(sym "Document"));
  check bool "instance listed transitively" true
    (List.exists (Symbol.equal (sym "doc1"))
       (Kb.all_instances_of kb (sym "Document")))

let test_closure_cache_rollback () =
  let kb = document_kb () in
  let base = Kb.base kb in
  let before = names (Kb.isa_closure kb (sym "Invitation")) in
  let r : (unit, string) result =
    Store.Base.with_tx base (fun () ->
        ignore (ok (Kb.declare kb "Artifact"));
        ignore (ok (Kb.add_isa kb ~sub:"Document" ~super:"Artifact"));
        (* query inside the transaction so the cache picks up the edge *)
        check bool "closure inside tx sees Artifact" true
          (List.exists (Symbol.equal (sym "Artifact"))
             (Kb.isa_closure kb (sym "Invitation")));
        Error "abort")
  in
  (match r with Error "abort" -> () | _ -> Alcotest.fail "tx not aborted");
  check Alcotest.(list string) "rollback replay restored the cache" before
    (names (Kb.isa_closure kb (sym "Invitation")))

(* display ------------------------------------------------------------------ *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec loop i = i + nl <= hl && (String.sub hay i nl = needle || loop (i + 1)) in
  loop 0

let test_text_dag_browser () =
  let kb = document_kb () in
  let out =
    Format.asprintf "%a"
      (Display.text_dag_browser ~max_depth:4
         ~labels:[ sym "isa" ] kb)
      (sym "Invitation")
  in
  check bool "chain rendered" true (contains "--isa--> Paper" out);
  check bool "document reached" true (contains "--isa--> Document" out)

let test_relational_display () =
  let kb = document_kb () in
  let out = Format.asprintf "%a" (Display.relational_display kb) (sym "Invitation") in
  check bool "object header" true (contains "object: Invitation" out);
  check bool "attribute row" true (contains "sender" out);
  check bool "class row" true (contains "TDL_EntityClass" out)

let test_proposition_table () =
  let kb = document_kb () in
  let out = Format.asprintf "%a" (Display.proposition_table kb) (sym "Invitation") in
  check bool "quadruple shown" true (contains "isa, Paper, Always>" out)

let test_dot_of_focus () =
  let kb = document_kb () in
  let dot = Display.dot_of_focus ~labels:[ sym "isa" ] kb (sym "Invitation") in
  check bool "dot header" true (contains "digraph focus" dot);
  check bool "isa edge" true (contains "\"Invitation\" -> \"Paper\"" dot);
  check bool "unrelated pruned" false (contains "Minutes" dot)

let suite =
  [
    ("bootstrap", `Quick, test_bootstrap);
    ("declare idempotent", `Quick, test_declare_idempotent);
    ("instanceof requires endpoints", `Quick, test_instanceof_requires_endpoints);
    ("classification", `Quick, test_classification);
    ("specialization", `Quick, test_specialization);
    ("isa cycle rejected", `Quick, test_isa_cycle_rejected);
    ("isa self rejected", `Quick, test_isa_self_rejected);
    ("instances through subclasses", `Quick, test_all_instances_through_subclasses);
    ("attributes", `Quick, test_attributes);
    ("reserved label rejected", `Quick, test_attribute_reserved_label_rejected);
    ("attribute instantiation principle", `Quick,
     test_attribute_instantiation_principle);
    ("attributes by category", `Quick, test_attributes_by_category);
    ("deductive view inheritance", `Quick, test_deductive_view_inheritance);
    ("user rule", `Quick, test_user_rule);
    ("ask formula", `Quick, test_ask_formula);
    ("behaviours", `Quick, test_behaviours);
    ("frame roundtrip", `Quick, test_frame_store_retrieve_roundtrip);
    ("frame store idempotent", `Quick, test_frame_store_idempotent);
    ("frame pp", `Quick, test_frame_pp);
    ("paper fig 3-2", `Quick, test_paper_fig_3_2);
    ("consistency clean", `Quick, test_consistency_clean);
    ("consistency dangling reference", `Quick, test_consistency_dangling_reference);
    ("consistency attribute conformance", `Quick,
     test_consistency_attribute_conformance);
    ("consistency unclassified attribute", `Quick,
     test_consistency_unclassified_attribute);
    ("consistency temporal", `Quick, test_consistency_temporal);
    ("consistency class constraint", `Quick, test_consistency_class_constraint);
    ("consistency incremental agrees", `Quick, test_consistency_incremental_agrees);
    ("consistency incremental empty delta", `Quick,
     test_consistency_incremental_empty_delta);
    ("closure cache hits", `Quick, test_closure_cache_hits);
    ("closure cache invalidation", `Quick, test_closure_cache_invalidation);
    ("closure cache instanceof invalidation", `Quick,
     test_closure_cache_instanceof_invalidation);
    ("closure cache rollback", `Quick, test_closure_cache_rollback);
    ("model basics", `Quick, test_model_basics);
    ("model includes and sharing", `Quick, test_model_includes_and_sharing);
    ("model configure and project", `Quick, test_model_configure_project);
    ("text dag browser", `Quick, test_text_dag_browser);
    ("relational display", `Quick, test_relational_display);
    ("proposition table", `Quick, test_proposition_table);
    ("dot of focus", `Quick, test_dot_of_focus);
  ]
