(* The concurrent GKBMS server: wire protocol, sessions, scheduler,
   version-keyed cache, and the concurrency differential test (N clients
   against the server must equal a sequential Shell replay). *)

module Protocol = Server.Protocol
module Daemon = Server.Daemon
module Client = Server.Client
module Repo = Gkbms.Repository
module Sym = Kernel.Symbol

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let req_ok client line =
  match Client.request client line with
  | Ok s -> s
  | Error e -> Alcotest.failf "request %S failed: %s" line e

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec loop i = i + nl <= hl && (String.sub hay i nl = needle || loop (i + 1)) in
  loop 0

(* a scenario repository advanced to the keyed stage, plus seed docs *)
let keyed_repo ?(docs = 0) () =
  let st = ok (Gkbms.Scenario.setup ()) in
  ignore (ok (Gkbms.Scenario.map_move_down st));
  ignore (ok (Gkbms.Scenario.normalize_invitations st));
  ignore (ok (Gkbms.Scenario.substitute_key st));
  let repo = st.Gkbms.Scenario.repo in
  for i = 0 to docs - 1 do
    ignore
      (ok
         (Repo.new_object repo
            ~name:(Printf.sprintf "Doc%d" i)
            ~cls:Gkbms.Metamodel.dbpl_object (Repo.Text "v0")))
  done;
  repo

(* protocol ------------------------------------------------------------- *)

let roundtrip frame =
  let client, server = Protocol.loopback () in
  ignore (Protocol.write_frame client frame);
  let r = Protocol.reader server in
  match Protocol.next_frame r with
  | Ok f -> f
  | Error `Eof -> Alcotest.fail "unexpected eof"
  | Error (`Corrupt e) -> Alcotest.failf "unexpected corruption: %s" e

let test_protocol_roundtrip () =
  (match roundtrip (Protocol.Request { id = 42; line = "focus Papers"; ctx = None }) with
  | Protocol.Request r ->
    check int "id" 42 r.Protocol.id;
    check string "line" "focus Papers" r.Protocol.line
  | _ -> Alcotest.fail "wrong frame kind");
  match
    roundtrip (Protocol.Response { id = 7; ok = false; payload = "error: x" })
  with
  | Protocol.Response r ->
    check int "id" 7 r.Protocol.id;
    check bool "ok" false r.Protocol.ok;
    check string "payload" "error: x" r.Protocol.payload
  | _ -> Alcotest.fail "wrong frame kind"

let test_protocol_pipelined_and_partial () =
  let client, server = Protocol.loopback () in
  let wire =
    Protocol.encode (Protocol.Request { id = 1; line = "a"; ctx = None })
    ^ Protocol.encode (Protocol.Request { id = 2; line = "b"; ctx = None })
  in
  (* deliver byte by byte: the reader must reassemble frames *)
  String.iter (fun c -> client.Protocol.write (String.make 1 c)) wire;
  let r = Protocol.reader server in
  (match Protocol.next_frame r with
  | Ok (Protocol.Request q) -> check int "first" 1 q.Protocol.id
  | _ -> Alcotest.fail "first frame");
  (match Protocol.next_frame r with
  | Ok (Protocol.Request q) -> check int "second" 2 q.Protocol.id
  | _ -> Alcotest.fail "second frame");
  check int "consumed everything" (String.length wire) (Protocol.bytes_consumed r)

let test_protocol_corruption () =
  let client, server = Protocol.loopback () in
  let wire =
    Bytes.of_string (Protocol.encode (Protocol.Request { id = 3; line = "stats"; ctx = None }))
  in
  (* flip a payload byte: the CRC must catch it *)
  let last = Bytes.length wire - 1 in
  Bytes.set wire last (Char.chr (Char.code (Bytes.get wire last) lxor 0xff));
  client.Protocol.write (Bytes.to_string wire);
  client.Protocol.close ();
  let r = Protocol.reader server in
  (match Protocol.next_frame r with
  | Error (`Corrupt reason) -> check bool "checksum" true (contains "checksum" reason)
  | _ -> Alcotest.fail "corruption undetected");
  (* truncated frame *)
  let client, server = Protocol.loopback () in
  let wire = Protocol.encode (Protocol.Request { id = 4; line = "stats"; ctx = None }) in
  client.Protocol.write (String.sub wire 0 (String.length wire - 2));
  client.Protocol.close ();
  let r = Protocol.reader server in
  match Protocol.next_frame r with
  | Error (`Corrupt _) -> ()
  | _ -> Alcotest.fail "truncation undetected"

(* bounded queue --------------------------------------------------------- *)

let test_bqueue () =
  let q = Server.Bqueue.create ~capacity:2 in
  check bool "put 1" true (Server.Bqueue.put q 1);
  check bool "put 2" true (Server.Bqueue.put q 2);
  check int "length" 2 (Server.Bqueue.length q);
  (* a put beyond capacity blocks until a take frees a slot *)
  let t = Thread.create (fun () -> ignore (Server.Bqueue.put q 3)) () in
  Thread.delay 0.02;
  check int "still full" 2 (Server.Bqueue.length q);
  check bool "fifo" true (Server.Bqueue.take q = Some 1);
  Thread.join t;
  check bool "fifo 2" true (Server.Bqueue.take q = Some 2);
  check bool "fifo 3" true (Server.Bqueue.take q = Some 3);
  Server.Bqueue.close q;
  check bool "closed take" true (Server.Bqueue.take q = None);
  check bool "closed put" false (Server.Bqueue.put q 4)

(* scheduler ------------------------------------------------------------- *)

let test_scheduler_classify () =
  List.iter
    (fun line -> check bool line true (Server.Scheduler.classify line = `Write))
    [ "run DecNormalize Normalizer relation=X"; "map"; "normalize"; "key";
      "minutes"; "resolve"; "load f" ];
  List.iter
    (fun line -> check bool line true (Server.Scheduler.classify line = `Read))
    [ "stats"; "focus Papers"; "why X"; "check"; "ask p"; "metrics" ];
  (* cursor-relative forms depend on session state: not cacheable *)
  check bool "why X cacheable" true (Server.Scheduler.cacheable "why X");
  check bool "bare why not cacheable" false (Server.Scheduler.cacheable "why");
  check bool "stats cacheable" true (Server.Scheduler.cacheable "stats");
  (* focus sets the session cursor — a side effect a cache hit would skip *)
  check bool "focus not cacheable" false (Server.Scheduler.cacheable "focus X");
  check bool "news not cacheable" false (Server.Scheduler.cacheable "news")

let test_scheduler_rw_exclusion () =
  let s = Server.Scheduler.create () in
  let m = Mutex.create () and c = Condition.create () in
  let readers_in = ref 0 and release = ref false in
  let reader () =
    Server.Scheduler.read s (fun () ->
        Mutex.lock m;
        incr readers_in;
        Condition.broadcast c;
        while not !release do
          Condition.wait c m
        done;
        Mutex.unlock m)
  in
  let t1 = Thread.create reader () and t2 = Thread.create reader () in
  Mutex.lock m;
  while !readers_in < 2 do
    Condition.wait c m
  done;
  Mutex.unlock m;
  (* both readers are inside the read lock simultaneously *)
  let wrote = ref false in
  let w =
    Thread.create (fun () -> Server.Scheduler.write s (fun () -> wrote := true)) ()
  in
  Thread.delay 0.02;
  check bool "writer excluded while readers hold the lock" false !wrote;
  Mutex.lock m;
  release := true;
  Condition.broadcast c;
  Mutex.unlock m;
  Thread.join t1;
  Thread.join t2;
  Thread.join w;
  check bool "writer ran after readers left" true !wrote;
  let st = Server.Scheduler.stats s in
  check int "reads" 2 st.Server.Scheduler.reads;
  check int "writes" 1 st.Server.Scheduler.writes;
  check bool "peak readers" true (st.Server.Scheduler.peak_readers >= 2)

(* cache ----------------------------------------------------------------- *)

let test_cache_versioning () =
  let c = Server.Cache.create ~capacity:8 () in
  check bool "miss" true (Server.Cache.find c ~version:1 "stats" = None);
  Server.Cache.store c ~version:1 "stats" "s1";
  check bool "hit" true (Server.Cache.find c ~version:1 "stats" = Some "s1");
  (* a newer version invalidates the whole generation *)
  check bool "newer version misses" true (Server.Cache.find c ~version:2 "stats" = None);
  check bool "old entry gone" true (Server.Cache.find c ~version:2 "stats" = None);
  Server.Cache.store c ~version:2 "stats" "s2";
  check bool "new generation hit" true
    (Server.Cache.find c ~version:2 "stats" = Some "s2");
  (* a stale computation must not be stored over a newer generation *)
  Server.Cache.store c ~version:1 "stats" "stale";
  check bool "stale store dropped" true
    (Server.Cache.find c ~version:2 "stats" = Some "s2");
  let st = Server.Cache.stats c in
  check bool "invalidations counted" true (st.Server.Cache.invalidations >= 1);
  check bool "hits counted" true (st.Server.Cache.hits >= 2)

let test_cache_capacity () =
  let c = Server.Cache.create ~capacity:2 () in
  Server.Cache.store c ~version:1 "a" "1";
  Server.Cache.store c ~version:1 "b" "2";
  Server.Cache.store c ~version:1 "c" "3";
  let st = Server.Cache.stats c in
  check bool "bounded" true (st.Server.Cache.entries <= 2);
  check bool "eviction counted" true (st.Server.Cache.evictions >= 1)

(* metrics ---------------------------------------------------------------- *)

let test_metrics () =
  let m = Server.Metrics.create () in
  Server.Metrics.record m ~cmd:"stats" ~ok:true ~seconds:0.001;
  Server.Metrics.record m ~cmd:"stats" ~ok:false ~seconds:0.002;
  Server.Metrics.record m ~cmd:"run" ~ok:true ~seconds:0.1;
  Server.Metrics.add_bytes m ~incoming:10 ~outgoing:20;
  Server.Metrics.session_opened m;
  let s = Server.Metrics.snapshot m in
  check int "total" 3 s.Server.Metrics.total_calls;
  check int "errors" 1 s.Server.Metrics.total_errors;
  check int "bytes in" 10 s.Server.Metrics.bytes_in;
  check int "commands" 2 (List.length s.Server.Metrics.commands);
  let stats_cmd = List.find (fun c -> c.Server.Metrics.cmd = "stats") s.Server.Metrics.commands in
  check int "stats calls" 2 stats_cmd.Server.Metrics.calls;
  check bool "p99 >= p50" true
    (stats_cmd.Server.Metrics.p99_us >= stats_cmd.Server.Metrics.p50_us);
  check bool "mean in range" true
    (stats_cmd.Server.Metrics.mean_us > 500. && stats_cmd.Server.Metrics.mean_us < 5000.)

(* end-to-end over the in-process loopback -------------------------------- *)

let test_loopback_session () =
  let repo = keyed_repo ~docs:1 () in
  let daemon = Daemon.create repo in
  let client = Client.of_transport (Daemon.connect daemon) in
  check string "ping" "pong" (req_ok client "ping");
  check bool "stats" true (contains "propositions" (req_ok client "stats"));
  let v0 = int_of_string (req_ok client "version") in
  (* a cacheable read twice: second one must hit *)
  ignore (req_ok client "stats");
  ignore (req_ok client "stats");
  let cs = Option.get (Daemon.cache_stats daemon) in
  check bool "cache hits" true (cs.Server.Cache.hits >= 1);
  (* a write bumps the version and lands in the news feed *)
  let out = req_ok client "run DecManualEdit Editor object=Doc0 text=v1" in
  check bool "write ok" true (contains "run executed" out);
  let v1 = int_of_string (req_ok client "version") in
  check bool "version bumped" true (v1 > v0);
  check bool "news" true (contains "committed" (req_ok client "news"));
  check string "news drained" "no news." (req_ok client "news");
  (* errors come back as error responses, not disconnects *)
  (match Client.request client "frobnicate" with
  | Error e -> check bool "error payload" true (contains "unknown command" e)
  | Ok _ -> Alcotest.fail "expected an error response");
  let m = req_ok client "metrics" in
  check bool "metrics has commands" true (contains "ping" m);
  check bool "metrics has cache" true (contains "cache:" m);
  Client.close client;
  (* the session drains and deregisters *)
  let rec wait n =
    if n > 0 && Daemon.session_count daemon > 0 then (
      Thread.delay 0.01;
      wait (n - 1))
  in
  wait 100;
  check int "sessions drained" 0 (Daemon.session_count daemon);
  Daemon.stop daemon

let test_session_listener_leak () =
  let repo = keyed_repo () in
  let before = Repo.event_listener_count repo in
  let daemon = Daemon.create repo in
  let clients =
    List.init 3 (fun _ -> Client.of_transport (Daemon.connect daemon))
  in
  List.iter (fun c -> ignore (req_ok c "ping")) clients;
  check bool "listeners attached" true (Repo.event_listener_count repo > before);
  List.iter Client.close clients;
  Daemon.stop daemon;
  (* off_event ran for every session: no leaked subscriptions *)
  check int "listeners detached" before (Repo.event_listener_count repo)

let test_idle_timeout () =
  let repo = keyed_repo () in
  let daemon =
    Daemon.create
      ~config:{ Daemon.default_config with idle_timeout = Some 0.05 }
      repo
  in
  let client = Client.of_transport (Daemon.connect daemon) in
  check string "alive" "pong" (req_ok client "ping");
  let rec wait n =
    if n > 0 && Daemon.session_count daemon > 0 then (
      Thread.delay 0.05;
      wait (n - 1))
  in
  wait 40;
  check int "idle session reaped" 0 (Daemon.session_count daemon);
  (match Client.request client "ping" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request succeeded on a reaped session");
  Daemon.stop daemon

let test_abrupt_disconnect () =
  let repo = keyed_repo () in
  let daemon = Daemon.create repo in
  let transport = Daemon.connect daemon in
  ignore (Protocol.write_frame transport (Protocol.Request { id = 1; line = "stats"; ctx = None }));
  (* drop the connection without a quit *)
  transport.Protocol.close ();
  let rec wait n =
    if n > 0 && Daemon.session_count daemon > 0 then (
      Thread.delay 0.01;
      wait (n - 1))
  in
  wait 100;
  check int "session cleaned up" 0 (Daemon.session_count daemon);
  (* the server still accepts new sessions *)
  let client = Client.of_transport (Daemon.connect daemon) in
  check string "still serving" "pong" (req_ok client "ping");
  Client.close client;
  Daemon.stop daemon

(* end-to-end over a real Unix-domain socket ------------------------------ *)

let test_unix_socket () =
  let repo = keyed_repo ~docs:1 () in
  let daemon = Daemon.create repo in
  let path = Filename.temp_file "gkbms_srv" ".sock" in
  Sys.remove path;
  let listener =
    Thread.create (fun () -> ignore (Daemon.listen daemon ~path)) ()
  in
  let rec wait_sock n =
    if n > 0 && not (Sys.file_exists path) then (
      Thread.delay 0.01;
      wait_sock (n - 1))
  in
  wait_sock 200;
  let client = ok (Client.connect_unix path) in
  check string "ping over socket" "pong" (req_ok client "ping");
  check bool "write over socket" true
    (contains "run executed" (req_ok client "run DecManualEdit Editor object=Doc0 text=v1"));
  Client.close client;
  Daemon.stop daemon;
  Thread.join listener;
  check bool "socket unlinked" false (Sys.file_exists path)

(* WAL-backed server ------------------------------------------------------ *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_wal_recovery () =
  let dir = Filename.temp_file "gkbms_srv_wal" "" in
  Sys.remove dir;
  let repo = keyed_repo ~docs:1 () in
  let decisions_before = List.length (Repo.decision_log repo) in
  let daemon = Daemon.create repo in
  ok (Daemon.attach_wal daemon ~dir);
  let client = Client.of_transport (Daemon.connect daemon) in
  check bool "journaled write" true
    (contains "run executed" (req_ok client "run DecManualEdit Editor object=Doc0 text=v1"));
  (* the WAL is synced before the response, so the decision is already
     durable here even if the process dies without Daemon.stop *)
  let recovered, _report = ok (Gkbms.Durable.recover ~dir ()) in
  check int "committed decision recovered without shutdown"
    (decisions_before + 1)
    (List.length (Repo.decision_log recovered));
  Client.close client;
  Daemon.stop daemon;
  rm_rf dir

(* the concurrency differential test -------------------------------------- *)

(* normalize generated names (fresh proposition ids, decision counters)
   that legitimately differ between two runs with the same history *)
let normalize_name n =
  let numeric_suffix prefix =
    String.length n > String.length prefix
    && String.sub n 0 (String.length prefix) = prefix
    && String.for_all
         (fun c -> c >= '0' && c <= '9')
         (String.sub n (String.length prefix) (String.length n - String.length prefix))
  in
  if numeric_suffix "p" then "_p"
  else if numeric_suffix "dec" then "_dec"
  else n

let digest repo ~docs =
  let base = Cml.Kb.base (Repo.kb repo) in
  let triples =
    Store.Base.fold base
      (fun acc p ->
        (normalize_name (Sym.name p.Kernel.Prop.source),
         normalize_name (Sym.name p.Kernel.Prop.label),
         normalize_name (Sym.name p.Kernel.Prop.dest))
        :: acc)
      []
    |> List.sort compare
  in
  let decision_classes =
    List.map (fun (_, dc) -> dc) (Gkbms.Navigation.browse_process repo)
  in
  let chains =
    List.init docs (fun i ->
        List.map Sym.name
          (Gkbms.Version.version_chain repo (Sym.intern (Printf.sprintf "Doc%d" i))))
  in
  let tips =
    List.init docs (fun i ->
        match
          List.rev
            (Gkbms.Version.version_chain repo (Sym.intern (Printf.sprintf "Doc%d" i)))
        with
        | tip :: _ -> Option.value ~default:"" (Repo.source_text repo tip)
        | [] -> "")
  in
  let unsupported =
    List.map Sym.name (Gkbms.Backtrack.unsupported_objects repo)
    |> List.sort compare
  in
  (triples, decision_classes, chains, tips, unsupported)

(* recover the server's commit order from the decision rationales and
   replay it sequentially through a plain Shell on an identical seed;
   the two repositories must then be indistinguishable *)
let replay_and_compare repo ~docs ~writes =
  let shell_lines =
    List.filter_map
      (fun dec ->
        match Gkbms.Decision.rationale_of repo dec with
        | Some r when String.length r > 7 && String.sub r 0 7 = "shell: " ->
          Some (String.sub r 7 (String.length r - 7))
        | _ -> None)
      (Repo.decision_log repo)
  in
  check int "server committed all writes" writes (List.length shell_lines);
  let repo_seq = keyed_repo ~docs () in
  let shell = Gkbms.Shell.of_repository repo_seq in
  List.iter
    (fun line ->
      let out = Gkbms.Shell.eval shell line in
      if contains "error" out then
        Alcotest.failf "sequential replay failed on %S: %s" line out)
    shell_lines;
  let d_server = digest repo ~docs and d_seq = digest repo_seq ~docs in
  let t1, dc1, ch1, tip1, u1 = d_server and t2, dc2, ch2, tip2, u2 = d_seq in
  check int "same proposition count" (List.length t2) (List.length t1);
  check bool "same proposition triples" true (t1 = t2);
  check bool "same decision classes" true (dc1 = dc2);
  check bool "same version chains" true (ch1 = ch2);
  check bool "same artifact tips" true (tip1 = tip2);
  check bool "same unsupported objects" true (u1 = u2)

let differential ?(domains = 1) ~cache () =
  let docs = 3 in
  let repo = keyed_repo ~docs () in
  let daemon =
    Daemon.create ~config:{ Daemon.default_config with cache; domains } repo
  in
  let reads =
    [| "stats"; "check"; "focus InvitationRel3"; "derive in(InvitationRel, ?C)" |]
  in
  (* commuting writes: each client grows its own document's version chain *)
  let client_thread ci =
    let client = Client.of_transport (Daemon.connect daemon) in
    let tip = ref (Printf.sprintf "Doc%d" ci) in
    for k = 1 to 4 do
      ignore (req_ok client reads.((ci + k) mod Array.length reads));
      let resp =
        req_ok client
          (Printf.sprintf "run DecManualEdit Editor object=%s text=c%dk%d" !tip ci k)
      in
      (match String.rindex_opt resp '>' with
      | Some i when i + 1 < String.length resp ->
        tip := String.trim (String.sub resp (i + 1) (String.length resp - i - 1))
      | _ -> Alcotest.failf "unparseable run response: %s" resp);
      ignore (req_ok client reads.(k mod Array.length reads))
    done;
    Client.close client
  in
  let threads = List.init docs (fun ci -> Thread.create client_thread ci) in
  List.iter Thread.join threads;
  Daemon.stop daemon;
  replay_and_compare repo ~docs ~writes:(docs * 4)

let test_differential_cached () = differential ~cache:true ()
let test_differential_uncached () = differential ~cache:false ()
let test_differential_domains () = differential ~domains:4 ~cache:true ()

(* verb classification table ---------------------------------------------- *)

let test_classification_table () =
  (* every verb the shell dispatches on, plus the daemon's built-ins,
     must have an explicit entry in the scheduler's table — no verb may
     reach the unknown-verb fallback *)
  let daemon_verbs = [ "metrics"; "news"; "ping"; "version" ] in
  List.iter
    (fun v ->
      check bool ("explicitly classified: " ^ v) true
        (List.mem v Server.Scheduler.known_verbs))
    (Gkbms.Shell.verbs @ daemon_verbs);
  (* a cacheable command must be a read: caching a write would skip it *)
  List.iter
    (fun v ->
      if Server.Scheduler.cacheable v then
        check bool ("cacheable implies read: " ^ v) true
          (Server.Scheduler.classify v = `Read))
    Server.Scheduler.known_verbs;
  (* the write set is exactly the decision-committing verbs *)
  let writes =
    List.filter
      (fun v -> Server.Scheduler.classify v = `Write)
      Server.Scheduler.known_verbs
  in
  check
    Alcotest.(slist string compare)
    "write verbs"
    [ "run"; "map"; "normalize"; "key"; "minutes"; "resolve"; "load" ]
    writes

(* bounded queue: model-based property ------------------------------------ *)

type bq_op = Push of int | Pop | Close

let prop_bqueue_model =
  let op_gen =
    QCheck.Gen.frequency
      [
        (4, QCheck.Gen.map (fun n -> Push n) QCheck.Gen.small_nat);
        (4, QCheck.Gen.return Pop);
        (1, QCheck.Gen.return Close);
      ]
  in
  let print_op = function
    | Push n -> Printf.sprintf "Push %d" n
    | Pop -> "Pop"
    | Close -> "Close"
  in
  let arb =
    QCheck.make
      ~print:(fun ops -> String.concat "; " (List.map print_op ops))
      (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) op_gen)
  in
  QCheck.Test.make ~name:"bqueue push/pop/close match the sequential model"
    ~count:300 arb (fun ops ->
      let q = Server.Bqueue.create ~capacity:1024 in
      let model = Queue.create () in
      let closed = ref false in
      List.for_all
        (fun op ->
          match op with
          | Push n ->
            let accepted = Server.Bqueue.put q n in
            let expect = not !closed in
            if expect then Queue.push n model;
            accepted = expect
          | Pop ->
            if Queue.is_empty model && not !closed then true (* would block *)
            else
              let got = Server.Bqueue.take q in
              let expect =
                if Queue.is_empty model then None else Some (Queue.pop model)
              in
              got = expect
          | Close ->
            Server.Bqueue.close q;
            closed := true;
            true)
        ops
      && Server.Bqueue.length q = Queue.length model)

let test_bqueue_concurrent_close () =
  (* producers, consumers, and a closer race: nothing accepted is lost,
     nothing is duplicated, and every put after close is refused *)
  let q = Server.Bqueue.create ~capacity:4 in
  let accepted = Array.make 3 [] in
  let taken = ref [] in
  let taken_m = Mutex.create () in
  let producer i =
    for k = 0 to 199 do
      let v = (i * 1000) + k in
      if Server.Bqueue.put q v then accepted.(i) <- v :: accepted.(i)
    done
  in
  let consumer () =
    let continue_ = ref true in
    while !continue_ do
      match Server.Bqueue.take q with
      | None -> continue_ := false
      | Some v ->
        Mutex.lock taken_m;
        taken := v :: !taken;
        Mutex.unlock taken_m
    done
  in
  let producers = List.init 3 (fun i -> Thread.create producer i) in
  let consumers = List.init 2 (fun _ -> Thread.create consumer ()) in
  Thread.delay 0.005;
  Server.Bqueue.close q;
  List.iter Thread.join producers;
  List.iter Thread.join consumers;
  check bool "put refused after close" false (Server.Bqueue.put q (-1));
  let sent = List.sort compare (List.concat (Array.to_list accepted)) in
  let got = List.sort compare !taken in
  check int "conserved count" (List.length sent) (List.length got);
  check bool "conserved items" true (sent = got)

let test_batch_admission_model () =
  (* racing submitters against the single drainer: every accepted item
     comes out exactly once, in per-submitter FIFO order, and no drained
     batch exceeds [max] — the invariants group commit acks rely on *)
  let b = Server.Scheduler.Batch.create ~max:7 ~window_us:200 in
  let producers = 3 and per_producer = 200 in
  let accepted = Array.make producers [] in
  let batches = ref [] in
  let drainer =
    Thread.create
      (fun () ->
        let continue_ = ref true in
        while !continue_ do
          match Server.Scheduler.Batch.drain b with
          | [] -> continue_ := false
          | xs -> batches := xs :: !batches
        done)
      ()
  in
  let submitters =
    List.init producers (fun i ->
        Thread.create
          (fun () ->
            for k = 0 to per_producer - 1 do
              let v = (i * 1000) + k in
              if Server.Scheduler.Batch.submit b v then
                accepted.(i) <- v :: accepted.(i);
              if k mod 17 = 0 then Thread.yield ()
            done)
          ())
  in
  List.iter Thread.join submitters;
  Server.Scheduler.Batch.close b;
  Thread.join drainer;
  check bool "submit refused after close" false
    (Server.Scheduler.Batch.submit b (-1));
  List.iter
    (fun xs ->
      check bool "batch within max" true (List.length xs <= 7))
    !batches;
  let drained = List.concat (List.rev !batches) in
  let sent = List.sort compare (List.concat (Array.to_list accepted)) in
  check int "conserved count" (List.length sent) (List.length drained);
  check bool "conserved items" true (sent = List.sort compare drained);
  (* FIFO per submitter: each producer's items appear in send order *)
  for i = 0 to producers - 1 do
    let mine = List.filter (fun v -> v / 1000 = i) drained in
    check bool
      (Printf.sprintf "producer %d order preserved" i)
      true
      (mine = List.sort compare mine)
  done

(* group commit + pipelining ---------------------------------------------- *)

let counter_value name =
  match Obs.Registry.find Obs.Registry.default name with
  | Some { Obs.Registry.value = Obs.Registry.Counter_v n; _ } -> n
  | _ -> 0

let histogram_total name =
  match Obs.Registry.find Obs.Registry.default name with
  | Some { Obs.Registry.value = Obs.Registry.Histogram_v h; _ } ->
    h.Obs.Histogram.total
  | _ -> 0

let test_group_commit_shares_fsyncs () =
  let dir = Filename.temp_file "gkbms_gc_wal" "" in
  Sys.remove dir;
  let docs = 8 in
  let repo = keyed_repo ~docs () in
  let decisions_before = List.length (Repo.decision_log repo) in
  let daemon =
    Daemon.create
      ~config:
        { Daemon.default_config with
          wal_fsync = true;
          (* a wide window so the whole pipelined burst forms one batch *)
          group_commit = Some (docs, 50_000);
        }
      repo
  in
  ok (Daemon.attach_wal daemon ~dir);
  let client = Client.of_transport (Daemon.connect daemon) in
  check string "alive" "pong" (req_ok client "ping");
  let fsyncs0 = counter_value "gkbms_wal_fsyncs_total" in
  let batches0 = histogram_total "gkbms_group_commit_batch_size" in
  let writes =
    List.init docs (fun i ->
        Printf.sprintf "run DecManualEdit Editor object=Doc%d text=v1" i)
  in
  let results = Client.pipeline ~window:docs client writes in
  List.iter2
    (fun line r ->
      match r with
      | Ok out -> check bool line true (contains "run executed" out)
      | Error e -> Alcotest.failf "pipelined write %S failed: %s" line e)
    writes results;
  let fsyncs1 = counter_value "gkbms_wal_fsyncs_total" in
  let batches1 = histogram_total "gkbms_group_commit_batch_size" in
  check bool "fewer syncs than decisions" true (fsyncs1 - fsyncs0 < docs);
  check bool "batches observed" true
    (batches1 - batches0 >= 1 && batches1 - batches0 <= docs);
  (* a session reads its own pipelined writes *)
  check bool "news sees the writes" true
    (contains "committed" (req_ok client "news"));
  (* every acked decision is durable before its ack *)
  let recovered, _ = ok (Gkbms.Durable.recover ~dir ()) in
  check int "acked pipelined writes all recovered" (decisions_before + docs)
    (List.length (Repo.decision_log recovered));
  Client.close client;
  Daemon.stop daemon;
  rm_rf dir

(* the differential, with group commit on and pipelined clients — over
   the blocking driver (loopback) or the select event loop (socket) *)
let differential_grouped ~event_loop () =
  let docs = 3 in
  let repo = keyed_repo ~docs () in
  let daemon =
    Daemon.create
      ~config:
        { Daemon.default_config with
          group_commit = Some (4, 300);
          event_loop;
        }
      repo
  in
  let run_clients mk_client =
    let client_thread ci =
      let client = mk_client () in
      let tip = ref (Printf.sprintf "Doc%d" ci) in
      for k = 1 to 4 do
        let lines =
          [
            "stats";
            Printf.sprintf "run DecManualEdit Editor object=%s text=c%dk%d" !tip
              ci k;
            "version";
          ]
        in
        (match Client.pipeline ~window:3 client lines with
        | [ Ok _; Ok resp; Ok _ ] -> (
          match String.rindex_opt resp '>' with
          | Some i when i + 1 < String.length resp ->
            tip := String.trim (String.sub resp (i + 1) (String.length resp - i - 1))
          | _ -> Alcotest.failf "unparseable run response: %s" resp)
        | rs ->
          List.iter
            (function
              | Error e -> Alcotest.failf "pipelined request failed: %s" e
              | Ok _ -> ())
            rs;
          Alcotest.failf "expected 3 responses, got %d" (List.length rs))
      done;
      Client.close client
    in
    let threads = List.init docs (fun ci -> Thread.create client_thread ci) in
    List.iter Thread.join threads
  in
  if event_loop then begin
    let path = Filename.temp_file "gkbms_gc_srv" ".sock" in
    Sys.remove path;
    let listener =
      Thread.create (fun () -> ignore (Daemon.listen daemon ~path)) ()
    in
    let rec wait_sock n =
      if n > 0 && not (Sys.file_exists path) then (
        Thread.delay 0.01;
        wait_sock (n - 1))
    in
    wait_sock 200;
    run_clients (fun () -> ok (Client.connect_unix ~handshake:true path));
    Daemon.stop daemon;
    Thread.join listener
  end
  else begin
    run_clients (fun () -> Client.of_transport (Daemon.connect daemon));
    Daemon.stop daemon
  end;
  replay_and_compare repo ~docs ~writes:(docs * 4)

let test_differential_grouped () = differential_grouped ~event_loop:false ()
let test_differential_event_loop () = differential_grouped ~event_loop:true ()

let test_event_loop_lifecycle () =
  let repo = keyed_repo ~docs:1 () in
  let listeners_before = Repo.event_listener_count repo in
  let daemon =
    Daemon.create
      ~config:
        { Daemon.default_config with
          event_loop = true;
          group_commit = Some (4, 500);
        }
      repo
  in
  let path = Filename.temp_file "gkbms_el_srv" ".sock" in
  Sys.remove path;
  let listener =
    Thread.create (fun () -> ignore (Daemon.listen daemon ~path)) ()
  in
  let rec wait_sock n =
    if n > 0 && not (Sys.file_exists path) then (
      Thread.delay 0.01;
      wait_sock (n - 1))
  in
  wait_sock 200;
  let clients = List.init 3 (fun _ -> ok (Client.connect_unix ~handshake:true path)) in
  List.iter (fun c -> check string "ping" "pong" (req_ok c "ping")) clients;
  let c0 = List.hd clients in
  check bool "write over event loop" true
    (contains "run executed" (req_ok c0 "run DecManualEdit Editor object=Doc0 text=v1"));
  check bool "news over event loop" true (contains "committed" (req_ok c0 "news"));
  (* an abrupt disconnect (no quit) must also be reaped *)
  (match clients with
  | _ :: abrupt :: rest ->
    ignore rest;
    ignore (Client.request abrupt "stats");
    ignore abrupt
  | _ -> ());
  List.iter Client.close clients;
  let rec wait n =
    if n > 0 && Daemon.session_count daemon > 0 then (
      Thread.delay 0.02;
      wait (n - 1))
  in
  wait 200;
  check int "event-loop sessions drained" 0 (Daemon.session_count daemon);
  Daemon.stop daemon;
  Thread.join listener;
  check bool "socket unlinked" false (Sys.file_exists path);
  check int "event listeners detached" listeners_before
    (Repo.event_listener_count repo)

(* connect-time retry on reset-shaped errors ------------------------------ *)

let test_client_retry_once () =
  (* first attempt dies with ECONNRESET (a server restarting under us),
     the second succeeds *)
  let attempts = ref 0 in
  let v =
    Client.with_retry (fun () ->
        incr attempts;
        if !attempts = 1 then
          raise (Unix.Unix_error (Unix.ECONNRESET, "connect", ""))
        else 42)
  in
  check int "second attempt answered" 42 v;
  check int "exactly one retry" 2 !attempts;
  (* EPIPE is retried the same way *)
  let attempts = ref 0 in
  ignore
    (Client.with_retry (fun () ->
         incr attempts;
         if !attempts = 1 then
           raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
         else 0));
  check int "epipe retried" 2 !attempts

let test_client_retry_gives_up () =
  (* persistent resets surface after the retry budget *)
  let attempts = ref 0 in
  (match
     Client.with_retry (fun () ->
         incr attempts;
         raise (Unix.Unix_error (Unix.ECONNRESET, "connect", "")))
   with
  | (_ : unit) -> Alcotest.fail "persistent reset did not raise"
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ());
  check int "both attempts used" 2 !attempts;
  (* non-retriable errors propagate immediately *)
  let attempts = ref 0 in
  (match
     Client.with_retry (fun () ->
         incr attempts;
         raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", "")))
   with
  | (_ : unit) -> Alcotest.fail "refused did not raise"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  check int "no retry for refused" 1 !attempts;
  check bool "retriable classification" true
    (Client.retriable (Unix.Unix_error (Unix.ECONNRESET, "", ""))
    && Client.retriable (Unix.Unix_error (Unix.EPIPE, "", ""))
    && not (Client.retriable (Unix.Unix_error (Unix.ENOENT, "", "")))
    && not (Client.retriable Exit))

(* trace propagation ---------------------------------------------------- *)

module Ctx = Obs.Trace_context

(* round-trip a traced request through the full framing (header, crc,
   tagged payload); the context rides as opaque bytes, so any short
   string must survive *)
let prop_traced_request_roundtrip =
  QCheck.Test.make ~name:"traced request frames round-trip" ~count:200
    QCheck.(
      triple small_nat
        (option (string_gen_of_size (Gen.int_range 0 255) Gen.printable))
        printable_string)
    (fun (id, ctx, line) ->
      match roundtrip (Protocol.Request { id; line; ctx }) with
      | Protocol.Request r ->
        r.Protocol.id = id && r.Protocol.line = line && r.Protocol.ctx = ctx
      | _ -> false)

let prop_trace_context_over_protocol =
  QCheck.Test.make ~name:"trace contexts survive the protocol framing"
    ~count:200
    QCheck.(triple int64 int64 bool)
    (fun (trace_id, span_id, sampled) ->
      let ctx = { Ctx.trace_id; span_id; sampled } in
      match
        roundtrip
          (Protocol.Request { id = 1; line = "status"; ctx = Some (Ctx.encode ctx) })
      with
      | Protocol.Request { ctx = Some s; _ } -> (
        match Ctx.decode s with Ok c -> Ctx.equal c ctx | Error _ -> false)
      | _ -> false)

let test_protocol_legacy_untraced () =
  (* absent context must keep the legacy 'Q' tag on the wire, so old
     peers interoperate in both directions *)
  let payload_of frame =
    let wire = Protocol.encode frame in
    String.sub wire 8 (String.length wire - 8)
  in
  let payload = payload_of (Protocol.Request { id = 9; line = "status"; ctx = None }) in
  check bool "untraced request keeps legacy tag" true (payload.[0] = 'Q');
  (match Protocol.decode_payload payload with
  | Ok (Protocol.Request r) ->
    check bool "legacy decode has no context" true (r.Protocol.ctx = None)
  | _ -> Alcotest.fail "legacy payload did not decode");
  (* traced requests use the new tag and refuse oversized contexts *)
  let traced =
    payload_of (Protocol.Request { id = 9; line = "status"; ctx = Some "abc" })
  in
  check bool "traced request uses new tag" true (traced.[0] = 'T');
  check bool "oversized context rejected" true
    (try
       ignore
         (payload_of
            (Protocol.Request
               { id = 9; line = "x"; ctx = Some (String.make 300 'c') }));
       false
     with Invalid_argument _ -> true)

let test_request_traced_spans () =
  let repo = keyed_repo () in
  let daemon = Daemon.create repo in
  let client = Client.of_transport (Daemon.connect daemon) in
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Obs.Trace.set_slow_threshold_s 10.;
  Fun.protect ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.set_slow_threshold_s 0.1;
      Client.close client;
      Daemon.stop daemon)
  @@ fun () ->
  let res, trace = Client.request_traced client "focus Papers" in
  ignore (ok res);
  check int "trace id is a 16-char hex handle" 16 (String.length trace);
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' | 'a' .. 'f' -> ()
      | _ -> Alcotest.failf "non-hex trace id %S" trace)
    trace;
  (* both halves of the conversation — the client's send span and the
     server's request span — carry the same trace id *)
  let spans = Obs.Trace.recent () in
  let tagged name =
    List.exists
      (fun sp ->
        sp.Obs.Trace.span_name = name
        && List.mem ("trace", trace) sp.Obs.Trace.attrs)
      spans
  in
  check bool "client.send span tagged" true (tagged "client.send");
  check bool "server.request span tagged" true (tagged "server.request")

let suite =
  [
    ("protocol roundtrip", `Quick, test_protocol_roundtrip);
    ("protocol pipelined and partial frames", `Quick, test_protocol_pipelined_and_partial);
    ("protocol corruption detected", `Quick, test_protocol_corruption);
    ("bounded queue", `Quick, test_bqueue);
    ("scheduler classification", `Quick, test_scheduler_classify);
    ("scheduler read/write exclusion", `Quick, test_scheduler_rw_exclusion);
    ("cache version keying", `Quick, test_cache_versioning);
    ("cache capacity bound", `Quick, test_cache_capacity);
    ("metrics accounting", `Quick, test_metrics);
    ("loopback end-to-end session", `Quick, test_loopback_session);
    ("sessions detach event listeners", `Quick, test_session_listener_leak);
    ("idle sessions are reaped", `Quick, test_idle_timeout);
    ("abrupt disconnect cleans up", `Quick, test_abrupt_disconnect);
    ("unix socket end-to-end", `Quick, test_unix_socket);
    ("wal synced before response", `Quick, test_wal_recovery);
    ("differential: concurrent = sequential (cache on)", `Quick, test_differential_cached);
    ("differential: concurrent = sequential (cache off)", `Quick, test_differential_uncached);
    ("differential: concurrent = sequential (4 domains)", `Quick, test_differential_domains);
    ("classification table covers every verb", `Quick, test_classification_table);
    QCheck_alcotest.to_alcotest prop_bqueue_model;
    ("bqueue concurrent close conserves items", `Quick, test_bqueue_concurrent_close);
    ("batch admission conserves, orders, caps", `Quick, test_batch_admission_model);
    ("group commit shares fsyncs, acks durable", `Quick, test_group_commit_shares_fsyncs);
    ("differential: group commit + pipelining", `Quick, test_differential_grouped);
    ("differential: event loop + group commit", `Quick, test_differential_event_loop);
    ("event loop lifecycle and cleanup", `Quick, test_event_loop_lifecycle);
    ("client retries reset once", `Quick, test_client_retry_once);
    ("client retry gives up and classifies", `Quick, test_client_retry_gives_up);
    QCheck_alcotest.to_alcotest prop_traced_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_trace_context_over_protocol;
    ("legacy untraced framing preserved", `Quick, test_protocol_legacy_untraced);
    ("traced request spans both halves", `Quick, test_request_traced_spans);
  ]
