(* The observability layer: histogram percentile laws (QCheck),
   registry registration semantics, exporter formats (a Prometheus
   line-grammar check and a minimal JSON parser), span recording, and
   the cross-layer wiring — a deliberately slowed decision commit must
   land its full span tree in the slow-op log. *)

module H = Obs.Histogram
module Reg = Obs.Registry
module Trace = Obs.Trace
module Export = Obs.Export
module Repo = Gkbms.Repository

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ---------------- histogram percentiles (properties) ---------------- *)

(* values spanning below-1, the middle buckets and the overflow bucket *)
let gen_values =
  QCheck.(
    list_of_size (Gen.int_range 1 60)
      (map (fun (mag, frac) -> Float.of_int mag +. frac)
         (pair (int_range 0 10_000_000) (float_range 0. 1.))))

let hist_of values =
  let h = H.create () in
  List.iter (H.observe h) values;
  h

let qs = [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ]

let prop_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentile is monotone in q" ~count:100
    gen_values (fun values ->
      let h = hist_of values in
      let ps = List.map (H.percentile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono ps)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"histogram percentile stays within observed range"
    ~count:100 gen_values (fun values ->
      let h = hist_of values in
      let lo = List.fold_left Float.min Float.infinity values in
      let hi = List.fold_left Float.max Float.neg_infinity values in
      List.for_all
        (fun q ->
          let p = H.percentile h q in
          lo <= p && p <= hi)
        qs)

let test_percentile_overflow () =
  (* all mass in the overflow bucket: percentiles must report observed
     values, never the (infinite) bucket bound *)
  let h = H.create ~buckets:4 () in
  List.iter (H.observe h) [ 100.; 200.; 400. ];
  check (Alcotest.float 0.001) "p100 = max" 400. (H.percentile h 1.);
  check (Alcotest.float 0.001) "p0 = min" 100. (H.percentile h 0.);
  check bool "p50 within range" true
    (H.percentile h 0.5 >= 100. && H.percentile h 0.5 <= 400.);
  let empty = H.create () in
  check (Alcotest.float 0.001) "empty histogram" 0. (H.percentile empty 0.5)

(* ---------------- registry ---------------- *)

let test_registry_idempotent () =
  let r = Reg.create () in
  let c1 = Reg.counter r "reqs_total" in
  let c2 = Reg.counter r "reqs_total" in
  Reg.Counter.inc c1;
  Reg.Counter.inc c2 ~by:2;
  check int "same underlying counter" 3 (Reg.Counter.get c1);
  (* distinct label sets are distinct series *)
  let la = Reg.counter r "labeled" ~labels:[ ("k", "a") ] in
  let lb = Reg.counter r "labeled" ~labels:[ ("k", "b") ] in
  Reg.Counter.inc la;
  check int "labels split series" 0 (Reg.Counter.get lb);
  check bool "kind mismatch rejected" true
    (try
       ignore (Reg.gauge r "reqs_total");
       false
     with Invalid_argument _ -> true);
  let samples = Reg.snapshot r in
  check int "three series" 3 (List.length samples);
  match Reg.find r "reqs_total" with
  | Some { Reg.value = Reg.Counter_v 3; _ } -> ()
  | _ -> Alcotest.fail "find lost the counter value"

let test_registry_disable () =
  let r = Reg.create () in
  let c = Reg.counter r "gated" in
  Obs.Runtime.set_enabled false;
  Reg.Counter.inc c;
  Obs.Runtime.set_enabled true;
  check int "no count while disabled" 0 (Reg.Counter.get c);
  Reg.Counter.inc c;
  check int "counts once re-enabled" 1 (Reg.Counter.get c)

(* ---------------- Prometheus exposition grammar ---------------- *)

let is_name_char ~first c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | '0' .. '9' -> not first
  | _ -> false

let valid_name s =
  s <> ""
  && String.length s > 0
  && is_name_char ~first:true s.[0]
  && String.for_all (fun c -> is_name_char ~first:false c) s

(* one sample line: name[{k="v",...}] SPACE value *)
let check_sample_line line =
  let metric, value =
    match String.rindex_opt line ' ' with
    | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )
    | None -> Alcotest.failf "no value separator in %S" line
  in
  (match float_of_string_opt value with
  | Some _ -> ()
  | None -> Alcotest.failf "unparseable value %S in %S" value line);
  let name, labels =
    match String.index_opt metric '{' with
    | None -> (metric, None)
    | Some i ->
      if metric.[String.length metric - 1] <> '}' then
        Alcotest.failf "unterminated label set in %S" line;
      ( String.sub metric 0 i,
        Some (String.sub metric (i + 1) (String.length metric - i - 2)) )
  in
  if not (valid_name name) then Alcotest.failf "bad metric name %S" name;
  match labels with
  | None -> ()
  | Some body ->
    (* k="v" pairs; values may contain escaped quotes *)
    let n = String.length body in
    let rec pair i =
      let rec name_end j =
        if j < n && is_name_char ~first:(j = i) body.[j] then name_end (j + 1)
        else j
      in
      let e = name_end i in
      if e = i || e + 1 >= n || body.[e] <> '=' || body.[e + 1] <> '"' then
        Alcotest.failf "bad label pair at %d in %S" i body;
      let rec value_end j =
        if j >= n then Alcotest.failf "unterminated label value in %S" body
        else if body.[j] = '\\' then value_end (j + 2)
        else if body.[j] = '"' then j
        else value_end (j + 1)
      in
      let v = value_end (e + 2) in
      if v + 1 < n then
        if body.[v + 1] = ',' then pair (v + 2)
        else Alcotest.failf "junk after label value in %S" body
    in
    pair 0

let sample_registry () =
  let r = Reg.create () in
  let c =
    Reg.counter r "gkbms_decisions_committed_total" ~help:"Decisions committed"
  in
  Reg.Counter.inc c ~by:5;
  let g = Reg.gauge r "queue_depth" in
  Reg.Gauge.set g 2.5;
  let h =
    Reg.histogram r "latency_us" ~buckets:6
      ~labels:[ ("cmd", "weird \"quoted\"\nname") ]
  in
  List.iter (H.observe h) [ 0.5; 3.; 900.; 1e9 ];
  r

let test_prometheus_format () =
  let text = Export.prometheus (Reg.snapshot (sample_registry ())) in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let seen_type = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if String.length line >= 2 && String.sub line 0 2 = "# " then begin
        match String.split_on_char ' ' line with
        | "#" :: ("HELP" | "TYPE") :: name :: _ when valid_name name ->
          if contains line "# TYPE" then begin
            if Hashtbl.mem seen_type name then
              Alcotest.failf "duplicate TYPE for %s" name;
            Hashtbl.add seen_type name ()
          end
        | _ -> Alcotest.failf "bad comment line %S" line
      end
      else check_sample_line line)
    lines;
  check bool "counter line" true
    (contains text "gkbms_decisions_committed_total 5");
  check bool "help text" true
    (contains text "# HELP gkbms_decisions_committed_total Decisions committed");
  check bool "histogram type" true (contains text "# TYPE latency_us histogram");
  check bool "overflow bucket" true (contains text "le=\"+Inf\"");
  check bool "count series" true (contains text "latency_us_count");
  check bool "escaped label value" true (contains text "weird \\\"quoted\\\"\\nname");
  (* cumulative buckets: last le count equals _count *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if contains l "latency_us_bucket" then
          String.rindex_opt l ' '
          |> Option.map (fun i ->
                 int_of_string
                   (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  check bool "buckets cumulative" true
    (List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length bucket_counts - 1) bucket_counts)
       (List.tl bucket_counts));
  check int "last bucket is total" 4 (List.nth bucket_counts (List.length bucket_counts - 1))

(* ---------------- minimal JSON validation ---------------- *)

(* a tiny recursive-descent syntax check: values, objects, arrays,
   strings with escapes, numbers; enough to prove the exporter emits
   well-formed JSON *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "invalid JSON at %d: %s" !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t')
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else if s.[!pos] = '\\' then begin
        pos := !pos + 2;
        go ()
      end
      else if s.[!pos] = '"' then incr pos
      else begin
        incr pos;
        go ()
      end
    in
    go ()
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> string_lit ()
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then incr pos
      else
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          if peek () = Some ',' then begin
            incr pos;
            members ()
          end
          else expect '}'
        in
        members ()
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then incr pos
      else
        let rec elements () =
          value ();
          skip_ws ();
          if peek () = Some ',' then begin
            incr pos;
            elements ()
          end
          else expect ']'
        in
        elements ()
    | Some ('n' | 't' | 'f') ->
      (* the literals: null, true, false (flight-log events use null) *)
      let lit =
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then Some 4
        else if !pos + 4 <= n && String.sub s !pos 4 = "true" then Some 4
        else if !pos + 5 <= n && String.sub s !pos 5 = "false" then Some 5
        else None
      in
      (match lit with
      | Some len -> pos := !pos + len
      | None -> fail "expected a literal")
    | Some _ -> number ()
    | None -> fail "unexpected end"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let test_json_export () =
  let json = Export.json (Reg.snapshot (sample_registry ())) in
  validate_json json;
  check bool "counter name survives" true
    (contains json "\"gkbms_decisions_committed_total\"");
  check bool "label value escaped" true
    (contains json "weird \\\"quoted\\\"\\nname");
  check bool "overflow le" true (contains json "\"le\":\"+Inf\"");
  check bool "histogram count" true (contains json "\"count\":4")

(* ---------------- tracing ---------------- *)

let test_span_nesting () =
  Trace.clear ();
  Trace.set_enabled true;
  Trace.set_slow_threshold_s 10.;
  let r =
    Trace.with_span "outer" ~attrs:[ ("k", "v") ] (fun () ->
        Trace.with_span "inner" (fun () -> 7) + 1)
  in
  Trace.set_enabled false;
  check int "result through spans" 8 r;
  match Trace.recent () with
  | root :: _ ->
    check Alcotest.string "root name" "outer" root.Trace.span_name;
    check bool "duration set" true (root.Trace.duration_s >= 0.);
    (match Trace.children root with
    | [ child ] -> check Alcotest.string "child name" "inner" child.Trace.span_name
    | l -> Alcotest.failf "expected 1 child, got %d" (List.length l))
  | [] -> Alcotest.fail "no root span recorded"

let test_span_exception_safety () =
  Trace.clear ();
  Trace.set_enabled true;
  Trace.set_slow_threshold_s 10.;
  (try Trace.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  (* the raising span was closed and recorded; a following span must be
     a fresh root, not a child of the broken one *)
  Trace.with_span "after" (fun () -> ());
  Trace.set_enabled false;
  let names = List.map (fun s -> s.Trace.span_name) (Trace.recent ()) in
  check (Alcotest.list Alcotest.string) "both roots recorded"
    [ "after"; "boom" ] names

let test_span_capacity () =
  Trace.clear ();
  Trace.set_capacity ~recent:3 ~slow:2;
  Trace.set_enabled true;
  Trace.set_slow_threshold_s 0.;
  for i = 1 to 5 do
    Trace.with_span (Printf.sprintf "op%d" i) (fun () -> ())
  done;
  Trace.set_enabled false;
  check int "recent bounded" 3 (List.length (Trace.recent ()));
  check int "slow bounded" 2 (List.length (Trace.slow ()));
  check Alcotest.string "newest kept" "op5"
    (List.hd (Trace.recent ())).Trace.span_name;
  Trace.set_capacity ~recent:64 ~slow:32;
  Trace.set_slow_threshold_s 0.1;
  Trace.clear ()

let test_span_json () =
  Trace.clear ();
  Trace.set_enabled true;
  Trace.set_slow_threshold_s 10.;
  Trace.with_span "root" ~attrs:[ ("cmd", "run \"x\"") ] (fun () ->
      Trace.with_span "leaf" (fun () -> ()));
  Trace.set_enabled false;
  let json = Export.spans_json (Trace.recent ()) in
  validate_json json;
  check bool "nested child serialized" true (contains json "\"leaf\"");
  check bool "attr escaped" true (contains json "run \\\"x\\\"")

(* ---------------- server group-commit series ---------------- *)

let test_group_commit_series () =
  (* the group-commit observability trio: the batch-size histogram and
     in-flight gauge live in the server metrics registry, the fsync
     counter is registered process-wide by the WAL file sink; all must
     render through the exposition grammar under their agreed names *)
  let m = Server.Metrics.create () in
  Server.Metrics.observe_batch m 5;
  Server.Metrics.observe_batch m 1;
  Server.Metrics.inflight m 3;
  Server.Metrics.inflight m (-1);
  let text = Export.prometheus (Reg.snapshot (Server.Metrics.registry m)) in
  List.iter
    (fun line ->
      if
        line <> ""
        && not (String.length line >= 2 && String.sub line 0 2 = "# ")
      then check_sample_line line)
    (String.split_on_char '\n' text);
  check bool "batch-size histogram exported" true
    (contains text "gkbms_group_commit_batch_size");
  check bool "in-flight gauge exported" true
    (contains text "gkbms_server_inflight_requests");
  (match Reg.find (Server.Metrics.registry m) "gkbms_server_inflight_requests" with
  | Some { Reg.value = Reg.Gauge_v v; _ } ->
    check (Alcotest.float 1e-9) "gauge tracks +3-1" 2.0 v
  | _ -> Alcotest.fail "in-flight gauge not registered");
  (match Reg.find (Server.Metrics.registry m) "gkbms_group_commit_batch_size" with
  | Some { Reg.value = Reg.Histogram_v h; _ } ->
    check int "two batches observed" 2 h.Obs.Histogram.total
  | _ -> Alcotest.fail "batch-size histogram not registered");
  (* the WAL sink's counter registers into the default registry at
     sink-creation time; exercise one to make the series appear *)
  let file = Filename.temp_file "gkbms_obs_wal" ".wal" in
  let w = Durability.Wal.writer (Durability.Wal.file_sink ~fsync:false file) in
  Durability.Wal.append w (Durability.Wal.Note ("k", "v"));
  Durability.Wal.sync w;
  Durability.Wal.close w;
  Sys.remove file;
  match Reg.find Reg.default "gkbms_wal_fsyncs_total" with
  | Some { Reg.value = Reg.Counter_v n; _ } ->
    check bool "fsync counter counts syncs" true (n >= 1)
  | _ -> Alcotest.fail "gkbms_wal_fsyncs_total not registered"

(* ---------------- exporter escaping regressions ---------------- *)

let test_prometheus_escaping_regression () =
  let r = Reg.create () in
  let c =
    Reg.counter r "esc_total" ~help:"path C:\\temp\nsecond line"
      ~labels:[ ("path", "C:\\dir \"q\"\nx") ]
  in
  Reg.Counter.inc c;
  let text = Export.prometheus (Reg.snapshot r) in
  (* every sample line must still satisfy the exposition grammar *)
  List.iter
    (fun line ->
      if
        line <> ""
        && not (String.length line >= 2 && String.sub line 0 2 = "# ")
      then check_sample_line line)
    (String.split_on_char '\n' text);
  check bool "HELP escapes backslash and newline" true
    (contains text "# HELP esc_total path C:\\\\temp\\nsecond line");
  check bool "label value escapes backslash, quote, newline" true
    (contains text "C:\\\\dir \\\"q\\\"\\nx");
  check Alcotest.string "help_escape" "a\\\\b\\nc" (Export.help_escape "a\\b\nc");
  check Alcotest.string "label_value_escape" "a\\\\b\\\"c\\nd"
    (Export.label_value_escape "a\\b\"c\nd")

(* ---------------- trace context codec ---------------- *)

module Ctx = Obs.Trace_context

let ctx_of (trace_id, span_id, sampled) = { Ctx.trace_id; span_id; sampled }

let gen_ctx = QCheck.(map ctx_of (triple int64 int64 bool))

let prop_ctx_roundtrip =
  QCheck.Test.make ~name:"trace context codec round-trips" ~count:300 gen_ctx
    (fun ctx ->
      match Ctx.decode (Ctx.encode ctx) with
      | Ok ctx' -> Ctx.equal ctx ctx'
      | Error _ -> false)

let prop_note_roundtrip =
  QCheck.Test.make ~name:"WAL trace note round-trips (incl. absent context)"
    ~count:300
    QCheck.(triple small_nat (option gen_ctx) (float_range 0. 2e9))
    (fun (n, ctx, commit_s) ->
      let decision = Printf.sprintf "dec%d" n in
      match
        Ctx.parse_note_value (Ctx.note_value ~decision ~ctx ~commit_s)
      with
      | Ok (d', ctx', c') ->
        d' = decision
        && Option.equal Ctx.equal ctx ctx'
        && Float.abs (c' -. commit_s) <= 1e-5
      | Error _ -> false)

let test_ctx_decode_rejects_malformed () =
  List.iter
    (fun s ->
      match Ctx.decode s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decoded malformed context %S" s)
    [ ""; "abc"; "zz:ff:1"; "1:2"; "1:2:3:4"; "ff:gg:1"; "ff:ee:2";
      "11111111111111111:2:1" ];
  match Ctx.parse_note_value "dec1 not-a-ctx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed malformed note"

let test_ctx_generate_distinct () =
  let a = Ctx.generate () and b = Ctx.generate () in
  check bool "fresh ids differ" false (Ctx.equal a b);
  let c = Ctx.child a in
  check bool "child keeps trace id" true (a.Ctx.trace_id = c.Ctx.trace_id);
  check bool "child gets fresh span id" false (a.Ctx.span_id = c.Ctx.span_id);
  check int "hex handle is 16 chars" 16 (String.length (Ctx.trace_hex a))

(* ---------------- ambient context ---------------- *)

let test_ambient_context () =
  Trace.clear ();
  Trace.set_enabled true;
  Trace.set_slow_threshold_s 10.;
  let ctx = Ctx.generate () in
  check bool "no ambient context initially" true
    (Trace.current_context () = None);
  Trace.with_context (Some ctx) (fun () ->
      check bool "ambient context set" true
        (Trace.current_context () = Some ctx);
      Trace.with_span "ctx_op" (fun () -> ());
      (* nested clear, then restore *)
      Trace.with_context None (fun () ->
          check bool "nested clear" true (Trace.current_context () = None)));
  check bool "context restored to none" true (Trace.current_context () = None);
  Trace.set_enabled false;
  match Trace.recent () with
  | sp :: _ ->
    check Alcotest.string "span name" "ctx_op" sp.Trace.span_name;
    check bool "span auto-tagged with trace id" true
      (List.mem ("trace", Ctx.trace_hex ctx) sp.Trace.attrs)
  | [] -> Alcotest.fail "no span recorded"

let test_slow_threshold_parse () =
  check bool "50 -> 0.05s" true (Trace.threshold_of_ms_string "50" = Some 0.05);
  check bool "0 ok" true (Trace.threshold_of_ms_string "0" = Some 0.);
  check bool "spaces ok" true
    (Trace.threshold_of_ms_string " 250 " = Some 0.25);
  check bool "negative rejected" true
    (Trace.threshold_of_ms_string "-1" = None);
  check bool "garbage rejected" true (Trace.threshold_of_ms_string "abc" = None)

(* ---------------- flight recorder ---------------- *)

let test_recorder_ring () =
  Obs.Recorder.clear ();
  Obs.Recorder.set_capacity 4;
  Fun.protect ~finally:(fun () ->
      Obs.Recorder.set_capacity 1024;
      Obs.Recorder.clear ())
  @@ fun () ->
  for i = 1 to 6 do
    Obs.Recorder.record
      ~decision:(Printf.sprintf "d%d" i)
      Obs.Recorder.Committed
  done;
  let evs = Obs.Recorder.events () in
  check int "ring bounded" 4 (List.length evs);
  check Alcotest.string "oldest surviving event" "d3"
    (List.hd evs).Obs.Recorder.decision;
  check Alcotest.string "newest event" "d6"
    (List.nth evs 3).Obs.Recorder.decision;
  Obs.Recorder.record ~trace:"cafe0123cafe0123" ~decision:"d7"
    (Obs.Recorder.Applied 0.005);
  check int "events_for filters" 1
    (List.length (Obs.Recorder.events_for "d7"));
  let r = Obs.Recorder.render_for "d7" in
  check bool "render carries trace id" true (contains r "cafe0123cafe0123");
  check bool "render carries lag" true (contains r "lag_ms=5.000");
  check bool "unknown decision message" true
    (contains (Obs.Recorder.render_for "nope") "no recorded events");
  (* dump is JSON lines, one per surviving event *)
  let path = Filename.temp_file "gkbms_flight" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ())
  @@ fun () ->
  let n = Obs.Recorder.dump_to_file path in
  check int "dump count" 4 n;
  let lines =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filter (fun l -> l <> "")
  in
  check int "one JSON line per event" 4 (List.length lines);
  List.iter validate_json lines;
  check bool "dump carries the applied event" true
    (List.exists (fun l -> contains l "\"kind\":\"applied\"") lines)

(* ---------------- SLO layer ---------------- *)

let test_slo_objectives_and_breaches () =
  Obs.Runtime.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Slo.set_objectives [];
      Obs.Slo.reset_counts ())
  @@ fun () ->
  (match Obs.Slo.configure "run=50ms, derive=1s ,key=200us,default=100" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure failed: %s" e);
  let approx a b = Float.abs (a -. b) < 1e-9 in
  check bool "ms suffix" true (approx (Obs.Slo.objective_for "run") 0.05);
  check bool "s suffix" true (approx (Obs.Slo.objective_for "derive") 1.0);
  check bool "us suffix" true (approx (Obs.Slo.objective_for "key") 2e-4);
  check bool "bare number is ms" true
    (approx (Obs.Slo.objective_for "unknown-cmd") 0.1);
  check bool "repl long-poll seed survives" true
    (approx (Obs.Slo.objective_for "repl") 2.0);
  (match Obs.Slo.parse_spec "run=abc" with
  | Error e -> check bool "parse error names the entry" true (contains e "run")
  | Ok _ -> Alcotest.fail "parsed a bad duration");
  (match Obs.Slo.parse_spec "=5ms" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed an empty command");
  Obs.Slo.reset_counts ();
  check bool "breach detected" true (Obs.Slo.observe ~cmd:"run" 0.2);
  check bool "fast request ok" false (Obs.Slo.observe ~cmd:"run" 0.01);
  let table = Obs.Slo.render () in
  check bool "render lists the command" true (contains table "run");
  check bool "render shows the breach" true (contains table "50.0");
  (* the sentinel counters reached the default registry *)
  match
    Reg.find Reg.default ~labels:[ ("cmd", "run") ] "gkbms_slo_breaches_total"
  with
  | Some { Reg.value = Reg.Counter_v v; _ } ->
    check bool "breach counter moved" true (v >= 1)
  | _ -> Alcotest.fail "gkbms_slo_breaches_total{cmd=run} missing"

(* ---------------- prover copy regression ---------------- *)

let test_prover_copy_stats_independent () =
  let d = Logic.Datalog.create () in
  let atom p args = Logic.Term.atom p args in
  List.iter
    (fun (x, y) ->
      ok
        (Logic.Datalog.add_fact d
           (atom "edge" [ Logic.Term.sym x; Logic.Term.sym y ])))
    [ ("a", "b"); ("b", "c"); ("c", "d") ];
  ok
    (Logic.Datalog.add_clause d
       (Logic.Term.clause
          (atom "path" [ Logic.Term.var "X"; Logic.Term.var "Y" ])
          [ Logic.Term.Pos (atom "edge" [ Logic.Term.var "X"; Logic.Term.var "Y" ]) ]));
  ok
    (Logic.Datalog.add_clause d
       (Logic.Term.clause
          (atom "path" [ Logic.Term.var "X"; Logic.Term.var "Z" ])
          [
            Logic.Term.Pos (atom "edge" [ Logic.Term.var "X"; Logic.Term.var "Y" ]);
            Logic.Term.Pos (atom "path" [ Logic.Term.var "Y"; Logic.Term.var "Z" ]);
          ]));
  let p = Logic.Prover.make d in
  ignore
    (Logic.Prover.solve p
       [ atom "path" [ Logic.Term.sym "a"; Logic.Term.var "Y" ] ]);
  let before = (Logic.Prover.stats p).Logic.Prover.resolutions in
  check bool "original did work" true (before > 0);
  (* a snapshot, not the live record *)
  let snap = Logic.Prover.stats p in
  snap.Logic.Prover.resolutions <- 12345;
  check int "mutating a snapshot does not reach the prover" before
    (Logic.Prover.stats p).Logic.Prover.resolutions;
  (* work in a copy is invisible to the original *)
  let q = Logic.Prover.copy p in
  Logic.Prover.clear_lemmas q;
  ignore
    (Logic.Prover.solve q
       [ atom "path" [ Logic.Term.sym "b"; Logic.Term.var "Y" ] ]);
  check int "copy's work does not leak into the original" before
    (Logic.Prover.stats p).Logic.Prover.resolutions;
  check bool "copy accumulated beyond the fork point" true
    ((Logic.Prover.stats q).Logic.Prover.resolutions > before)

(* ---------------- cross-layer: slow decision in the slow-op log ------ *)

let test_slow_decision_in_slow_log () =
  let repo = Repo.create () in
  Gkbms.Mapping.register_tools repo;
  Repo.register_tool repo
    {
      Repo.tool_name = "SlowEditor";
      executes = Gkbms.Metamodel.dec_manual_edit;
      automation = `Manual;
      guarantees = [];
      run =
        (fun repo ~inputs ~params ->
          Unix.sleepf 0.03;
          match
            (List.assoc_opt "object" inputs, List.assoc_opt "text" params)
          with
          | Some obj, Some text ->
            Result.bind
              (Repo.new_object repo ~name:"SlowDoc_v2" ~replaces:obj
                 ~cls:Gkbms.Metamodel.dbpl_object (Repo.Text text))
              (fun id ->
                Ok [ { Repo.role = "edited"; obj = id; replaces = Some obj } ])
          | _ -> Error "need object/text");
    };
  let doc =
    ok
      (Repo.new_object repo ~name:"SlowDoc" ~cls:Gkbms.Metamodel.dbpl_object
         (Repo.Text "v0"))
  in
  Trace.clear ();
  Trace.set_slow_threshold_s 0.01;
  Trace.set_enabled true;
  let before =
    match Reg.find Reg.default "gkbms_decisions_committed_total" with
    | Some { Reg.value = Reg.Counter_v v; _ } -> v
    | _ -> 0
  in
  ignore
    (ok
       (Gkbms.Decision.execute repo
          ~decision_class:Gkbms.Metamodel.dec_manual_edit ~tool:"SlowEditor"
          ~inputs:[ ("object", doc) ]
          ~params:[ ("text", "v1") ]
          ()));
  Trace.set_enabled false;
  Trace.set_slow_threshold_s 0.1;
  (* the sentinel counter moved *)
  (match Reg.find Reg.default "gkbms_decisions_committed_total" with
  | Some { Reg.value = Reg.Counter_v v; _ } ->
    check int "decision counted in the shared registry" (before + 1) v
  | _ -> Alcotest.fail "sentinel counter missing");
  (* and the slow-op log holds the decision's full span tree *)
  match
    List.find_opt
      (fun s -> s.Trace.span_name = "decision.execute")
      (Trace.slow ())
  with
  | None -> Alcotest.fail "slowed decision.execute not in the slow-op log"
  | Some sp ->
    check bool "slow span is actually slow" true (sp.Trace.duration_s >= 0.01);
    check bool "tool attr captured" true
      (List.mem ("tool", "SlowEditor") sp.Trace.attrs);
    let children = List.map (fun c -> c.Trace.span_name) (Trace.children sp) in
    check bool "tool_run child present" true
      (List.mem "decision.tool_run" children);
    check bool "consistency child present" true
      (List.mem "decision.consistency_check" children);
    check bool "commit child present" true (List.mem "decision.commit" children)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_percentile_bounded;
    ("percentile overflow and empty", `Quick, test_percentile_overflow);
    ("registry registration idempotent", `Quick, test_registry_idempotent);
    ("registry gated by runtime flag", `Quick, test_registry_disable);
    ("prometheus exposition grammar", `Quick, test_prometheus_format);
    ("json export well-formed", `Quick, test_json_export);
    ("span nesting", `Quick, test_span_nesting);
    ("span exception safety", `Quick, test_span_exception_safety);
    ("span ring capacity", `Quick, test_span_capacity);
    ("span tree json", `Quick, test_span_json);
    ("prover copy stats independent", `Quick, test_prover_copy_stats_independent);
    ("slow decision commit traced", `Quick, test_slow_decision_in_slow_log);
    ("prometheus escaping regression", `Quick, test_prometheus_escaping_regression);
    ("group-commit series exported", `Quick, test_group_commit_series);
    QCheck_alcotest.to_alcotest prop_ctx_roundtrip;
    QCheck_alcotest.to_alcotest prop_note_roundtrip;
    ("trace context rejects malformed", `Quick, test_ctx_decode_rejects_malformed);
    ("trace context id generation", `Quick, test_ctx_generate_distinct);
    ("ambient trace context", `Quick, test_ambient_context);
    ("slow threshold parsing", `Quick, test_slow_threshold_parse);
    ("flight recorder ring", `Quick, test_recorder_ring);
    ("slo objectives and breaches", `Quick, test_slo_objectives_and_breaches);
  ]
