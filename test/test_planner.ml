(* The cost-based query planner: statistics exactness, cost-model
   ordering, magic-sets cone restriction, and — the load-bearing
   property — answer invariance: [Planner.query] must produce exactly
   the substitution set of the unplanned engine on randomized programs
   and bindings, sequentially and at 1/2/4 domains. *)

open Kernel
open Logic
module T = Term
module P = Planner

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let v = T.var
let s = T.sym
let sym = Symbol.intern

let pool1 = Par.Pool.create ~domains:1
let pool2 = Par.Pool.create ~domains:2
let pool4 = Par.Pool.create ~domains:4

let canon substs =
  List.sort_uniq String.compare
    (List.map (Format.asprintf "%a" T.Subst.pp) substs)

(* statistics ----------------------------------------------------------- *)

let test_stats_exact () =
  let st = P.Stats.create () in
  let p = sym "tp_edge" in
  let tup a b = [| s a; s b |] in
  P.Stats.observe_add st p (tup "a" "x");
  P.Stats.observe_add st p (tup "a" "y");
  P.Stats.observe_add st p (tup "b" "y");
  check int "rows" 3 (Option.get (P.Stats.rows st p));
  check int "distinct arg0" 2 (Option.get (P.Stats.distinct st p 0));
  check int "distinct arg1" 2 (Option.get (P.Stats.distinct st p 1));
  (* removing one 'a' tuple keeps 'a' distinct (multiplicity 2 -> 1) *)
  P.Stats.observe_remove st p (tup "a" "x");
  check int "rows after remove" 2 (Option.get (P.Stats.rows st p));
  check int "distinct arg0 kept" 2 (Option.get (P.Stats.distinct st p 0));
  check int "distinct arg1 dropped to" 1 (Option.get (P.Stats.distinct st p 1));
  P.Stats.observe_remove st p (tup "a" "y");
  check int "distinct arg0 dropped" 1 (Option.get (P.Stats.distinct st p 0));
  (* unknown removals clamp at zero *)
  P.Stats.observe_remove st p (tup "zz" "zz");
  P.Stats.observe_remove st p (tup "b" "y");
  P.Stats.observe_remove st p (tup "b" "y");
  check int "rows clamp" 0 (Option.get (P.Stats.rows st p));
  check bool "unknown pred" true (P.Stats.rows st (sym "tp_none") = None)

let test_stats_gauges () =
  let st = P.Stats.create () in
  let p = sym "tp_gauge_pred" in
  P.Stats.observe_add st p [| s "a"; s "b" |];
  P.Stats.observe_add st p [| s "c"; s "d" |];
  match
    Obs.Registry.find Obs.Registry.default
      ~labels:[ ("pred", "tp_gauge_pred") ]
      "gkbms_datalog_pred_rows"
  with
  | Some { Obs.Registry.value = Obs.Registry.Gauge_v g; _ } ->
    check bool "gauge tracks rows" true (g = 2.0)
  | Some _ -> Alcotest.fail "pred_rows is not a gauge"
  | None -> Alcotest.fail "gkbms_datalog_pred_rows{pred=...} not registered"

let test_stats_attach () =
  let base = Store.Base.create () in
  let st = P.Stats.create () in
  let pred = sym "tp_link" in
  let tuples_of (p : Prop.t) = [ (pred, [| T.symbol p.source; T.symbol p.dest |]) ] in
  let _sub = P.Stats.attach_base st base ~tuples_of in
  let mk id src dst =
    Prop.make ~id:(sym id) ~source:(sym src) ~label:(sym "l") ~dest:(sym dst) ()
  in
  ok (Store.Base.insert base (mk "t1" "a" "x"));
  ok (Store.Base.insert base (mk "t2" "b" "x"));
  check int "rows after inserts" 2 (Option.get (P.Stats.rows st pred));
  check int "distinct dest" 1 (Option.get (P.Stats.distinct st pred 1));
  ignore (ok (Store.Base.remove base (sym "t1")));
  check int "rows after remove" 1 (Option.get (P.Stats.rows st pred));
  check int "distinct source" 1 (Option.get (P.Stats.distinct st pred 0))

(* cost model ------------------------------------------------------------ *)

let test_cost_order () =
  let st = P.Stats.create () in
  let big = sym "tc_big" and small = sym "tc_small" in
  for i = 0 to 99 do
    P.Stats.observe_add st big [| s (Printf.sprintf "b%d" i); s "hub" |]
  done;
  P.Stats.observe_add st small [| s "k"; s "m" |];
  let d = Datalog.create () in
  let est = P.Cost.of_stats ~stats:st d in
  (* nothing bound: the 1-row relation should be joined first, and the
     comparison delayed until both variables are bound *)
  let body =
    [
      T.Cmp (T.Lt, v "X", v "Y");
      T.Pos (T.atom_s big [ v "X"; v "Y" ]);
      T.Pos (T.atom_s small [ v "Y"; v "Z" ]);
    ]
  in
  let plan = P.Cost.order_body est ~bound:P.Cost.Vars.empty body in
  (match List.map (fun (lp : P.Cost.lit_plan) -> lp.lit) plan.order with
  | [ T.Pos a1; T.Pos a2; T.Cmp _ ] ->
    check bool "small first" true (Symbol.equal a1.T.pred small);
    check bool "big second" true (Symbol.equal a2.T.pred big)
  | _ -> Alcotest.fail "unexpected order");
  (* the second literal joins on a bound variable -> indexed *)
  (match plan.order with
  | _ :: (lp : P.Cost.lit_plan) :: _ -> check bool "indexed join" true lp.indexed
  | _ -> Alcotest.fail "short plan")

(* magic-sets ------------------------------------------------------------ *)

let segmented ~segments ~len =
  let d = Datalog.create () in
  let facts = ref [] in
  for sgt = 0 to segments - 1 do
    for i = 0 to len - 1 do
      facts :=
        T.atom "edge"
          [ s (Printf.sprintf "m%d_%d" sgt i);
            s (Printf.sprintf "m%d_%d" sgt (i + 1)) ]
        :: !facts
    done
  done;
  ok (Datalog.add_facts d !facts);
  ok
    (Datalog.add_clause d
       (T.clause (T.atom "path" [ v "X"; v "Y" ])
          [ T.Pos (T.atom "edge" [ v "X"; v "Y" ]) ]));
  ok
    (Datalog.add_clause d
       (T.clause (T.atom "path" [ v "X"; v "Y" ])
          [ T.Pos (T.atom "edge" [ v "X"; v "Z" ]);
            T.Pos (T.atom "path" [ v "Z"; v "Y" ]) ]));
  d

let test_magic_cone () =
  let d = segmented ~segments:20 ~len:5 in
  let goal = T.atom "path" [ s "m7_0"; v "Y" ] in
  let est = P.Cost.of_stats d in
  let rw =
    match
      P.Magic.rewrite ~est ~is_idb:(Datalog.is_idb d)
        ~rules:(Datalog.clauses d) goal
    with
    | Ok rw -> rw
    | Error _ -> Alcotest.fail "expected a magic rewrite"
  in
  let view = Datalog.derive_view d in
  List.iter (fun c -> ok (Datalog.add_clause view c)) rw.P.Magic.clauses;
  ok (Datalog.solve view);
  let planned = Datalog.match_atom view rw.P.Magic.answer T.Subst.empty in
  (* full materialization on the original engine *)
  let full = ok (Datalog.query d goal) in
  check bool "answers equal" true (canon planned = canon full);
  check int "answers" 5 (List.length planned);
  (* the view touched one segment's cone, not the 20-segment closure *)
  let full_closure = Datalog.derived_count d in
  let cone = Datalog.derived_count view in
  check int "full closure" (20 * (5 * 6 / 2)) full_closure;
  (* one segment's adorned tuples + magic facts, nowhere near 300 *)
  check bool "cone is small" true (cone < full_closure / 5)

let test_magic_all_free () =
  (* zero bound arguments: nullary magic predicates must still work *)
  let d = segmented ~segments:3 ~len:3 in
  let goal = T.atom "path" [ v "X"; v "Y" ] in
  let planned = ok (P.query d goal) in
  let full = ok (Datalog.query (Datalog.copy d) goal) in
  check bool "all-free answers equal" true (canon planned = canon full);
  check int "all-free count" (3 * (3 * 4 / 2)) (List.length planned)

let test_edb_shortcut () =
  let d = segmented ~segments:2 ~len:3 in
  let goal = T.atom "edge" [ s "m0_1"; v "Y" ] in
  let planned = ok (P.query d goal) in
  check int "edb answers" 1 (List.length planned);
  (* the engine was not materialized to answer it *)
  check int "no derivation" 0 (Datalog.derived_count d)

let test_nonmonotone_fallback () =
  let d = Datalog.create () in
  List.iter
    (fun f -> ok (Datalog.add_fact d f))
    [
      T.atom "node" [ s "a" ]; T.atom "node" [ s "b" ]; T.atom "node" [ s "c" ];
      T.atom "edge" [ s "a"; s "b" ];
    ];
  ok
    (Datalog.add_clause d
       (T.clause (T.atom "path" [ v "X"; v "Y" ])
          [ T.Pos (T.atom "edge" [ v "X"; v "Y" ]) ]));
  ok
    (Datalog.add_clause d
       (T.clause (T.atom "unreach" [ v "X"; v "Y" ])
          [ T.Pos (T.atom "node" [ v "X" ]);
            T.Pos (T.atom "node" [ v "Y" ]);
            T.Neg (T.atom "path" [ v "X"; v "Y" ]) ]));
  (* querying the nonmonotone predicate falls back to full evaluation *)
  let goal = T.atom "unreach" [ s "a"; v "Y" ] in
  let planned = ok (P.query d goal) in
  let full = ok (Datalog.query (Datalog.copy d) goal) in
  check bool "fallback answers equal" true (canon planned = canon full);
  check int "fallback count" 2 (List.length planned);
  (* querying path still gets the magic rewrite: its cone is monotone *)
  let goal = T.atom "path" [ s "a"; v "Y" ] in
  let est = P.Cost.of_stats d in
  (match
     P.Magic.rewrite ~est ~is_idb:(Datalog.is_idb d)
       ~rules:(Datalog.clauses d) goal
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "monotone cone should rewrite");
  let planned = ok (P.query d goal) in
  check bool "cone answers equal" true
    (canon planned = canon (ok (Datalog.query (Datalog.copy d) goal)))

(* the differential: planned ≡ unplanned, at 1/2/4 domains --------------- *)

let node i = Printf.sprintf "q%d" i

let build_program edges nodes =
  let d = Datalog.create () in
  List.iter
    (fun (i, j) -> ok (Datalog.add_fact d (T.atom "edge" [ s (node i); s (node j) ])))
    edges;
  List.iter
    (fun i -> ok (Datalog.add_fact d (T.atom "node" [ s (node i) ])))
    nodes;
  List.iter
    (fun c -> ok (Datalog.add_clause d c))
    [
      T.clause (T.atom "path" [ v "X"; v "Y" ])
        [ T.Pos (T.atom "edge" [ v "X"; v "Y" ]) ];
      T.clause (T.atom "path" [ v "X"; v "Y" ])
        [ T.Pos (T.atom "edge" [ v "X"; v "Z" ]);
          T.Pos (T.atom "path" [ v "Z"; v "Y" ]) ];
      T.clause (T.atom "ord" [ v "X"; v "Y" ])
        [ T.Pos (T.atom "path" [ v "X"; v "Y" ]); T.Cmp (T.Lt, v "X", v "Y") ];
      T.clause (T.atom "unreach" [ v "X"; v "Y" ])
        [ T.Pos (T.atom "node" [ v "X" ]); T.Pos (T.atom "node" [ v "Y" ]);
          T.Neg (T.atom "path" [ v "X"; v "Y" ]) ];
    ];
  d

let goal_gen =
  QCheck.Gen.(
    let* pred = oneofl [ "edge"; "path"; "ord"; "unreach"; "node" ] in
    let arity = if pred = "node" then 1 else 2 in
    let* args =
      list_repeat arity
        (oneof
           [ map (fun i -> `Const i) (int_range 0 7);
             oneofl [ `Var "A"; `Var "B" ] ])
    in
    return (pred, args))

let arbitrary_case =
  QCheck.make
    ~print:(fun (edges, nodes, (pred, args)) ->
      Printf.sprintf "edges=%s nodes=%s goal=%s(%s)"
        (String.concat ","
           (List.map (fun (i, j) -> Printf.sprintf "%d-%d" i j) edges))
        (String.concat "," (List.map string_of_int nodes))
        pred
        (String.concat ","
           (List.map
              (function `Const i -> node i | `Var w -> "?" ^ w)
              args)))
    QCheck.Gen.(
      triple
        (list_size (int_range 0 20) (pair (int_range 0 7) (int_range 0 7)))
        (list_size (int_range 0 6) (int_range 0 7))
        goal_gen)

let test_planner_differential =
  QCheck.Test.make
    ~name:"planner: planned ≡ unplanned on random programs (1/2/4 domains)"
    ~count:60 arbitrary_case
    (fun (edges, nodes, (pred, args)) ->
      let goal =
        T.atom pred
          (List.map (function `Const i -> s (node i) | `Var w -> v w) args)
      in
      let reference = build_program edges nodes in
      let expect = canon (ok (Datalog.query reference goal)) in
      let planned d pool = canon (ok (P.query ?pool d goal)) in
      List.for_all
        (fun pool -> planned (build_program edges nodes) pool = expect)
        [ None; Some pool1; Some pool2; Some pool4 ])

(* Kb integration -------------------------------------------------------- *)

let small_kb () =
  let kb = Cml.Kb.create () in
  List.iter
    (fun n -> ignore (ok (Cml.Kb.declare kb n)))
    [ "Doc"; "Report"; "Paper"; "r1"; "p1" ];
  ignore (ok (Cml.Kb.add_isa kb ~sub:"Report" ~super:"Doc"));
  ignore (ok (Cml.Kb.add_isa kb ~sub:"Paper" ~super:"Doc"));
  ignore (ok (Cml.Kb.add_instanceof kb ~inst:"r1" ~cls:"Report"));
  ignore (ok (Cml.Kb.add_instanceof kb ~inst:"p1" ~cls:"Paper"));
  kb

let with_planner enabled f =
  let prev = P.on () in
  P.set_enabled enabled;
  Fun.protect ~finally:(fun () -> P.set_enabled prev) f

let test_kb_derive_equal () =
  let kb = small_kb () in
  List.iter
    (fun goal ->
      let off = with_planner false (fun () -> canon (ok (Cml.Kb.derive kb goal))) in
      let on = with_planner true (fun () -> canon (ok (Cml.Kb.derive kb goal))) in
      check bool "derive planner on ≡ off" true (off = on))
    [
      T.atom "in" [ s "r1"; v "C" ];
      T.atom "in" [ v "X"; s "Doc" ];
      T.atom "isa_tc" [ v "X"; v "Y" ];
      T.atom "instanceof" [ s "p1"; v "C" ];
    ];
  (* and the planned path really answers: r1 is at least in Report and Doc *)
  let on =
    with_planner true (fun () ->
        canon (ok (Cml.Kb.derive kb (T.atom "in" [ s "r1"; v "C" ]))))
  in
  check bool "r1 has classes" true (List.length on >= 2)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_kb_explain () =
  let kb = small_kb () in
  let report = ok (Cml.Kb.explain kb (T.atom "in" [ s "r1"; v "C" ])) in
  List.iter
    (fun needle ->
      check bool (Printf.sprintf "explain mentions %S" needle) true
        (contains report needle))
    [ "strategy: magic-sets"; "estimated vs actual"; "answers:"; "in@bf" ]

let test_metrics () =
  let counter name =
    match Obs.Registry.find Obs.Registry.default name with
    | Some { Obs.Registry.value = Obs.Registry.Counter_v n; _ } -> n
    | _ -> 0
  in
  let before = counter "gkbms_planner_plans_total" in
  let d = segmented ~segments:2 ~len:2 in
  ignore (ok (P.query d (T.atom "path" [ s "m0_0"; v "Y" ])));
  check bool "plans_total counted" true
    (counter "gkbms_planner_plans_total" > before)

let suite =
  [
    ("stats: exact distinct under add/remove", `Quick, test_stats_exact);
    ("stats: pred_rows gauges exported", `Quick, test_stats_gauges);
    ("stats: attach_base tracks the change feed", `Quick, test_stats_attach);
    ("cost: selective literal first, filters when bound", `Quick, test_cost_order);
    ("magic: bound query evaluates only the cone", `Quick, test_magic_cone);
    ("magic: all-free query (nullary magic seeds)", `Quick, test_magic_all_free);
    ("planner: EDB shortcut skips materialization", `Quick, test_edb_shortcut);
    ("planner: nonmonotone cone falls back, answers equal", `Quick,
     test_nonmonotone_fallback);
    QCheck_alcotest.to_alcotest test_planner_differential;
    ("kb: derive planner on ≡ off", `Quick, test_kb_derive_equal);
    ("kb: explain renders plan and cardinalities", `Quick, test_kb_explain);
    ("planner: obs counters move", `Quick, test_metrics);
  ]
