open Kernel
open Store

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let sym = Symbol.intern

let mk ?(time = Time.always) id source label dest =
  Prop.make ~time ~id:(sym id) ~source:(sym source) ~label:(sym label)
    ~dest:(sym dest) ()

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let ids props =
  List.sort String.compare
    (List.map (fun (p : Prop.t) -> Symbol.name p.id) props)

let with_backends f =
  List.iter
    (fun backend -> f (Base.create ~backend ()))
    [ `Mem; `Log; `Log_nocompact; `Arena ]

let test_insert_find () =
  with_backends (fun base ->
      ok (Base.insert base (mk "s1" "Invitation" "isa" "Paper"));
      check bool "mem" true (Base.mem base (sym "s1"));
      match Base.find base (sym "s1") with
      | Some p -> check bool "found" true (Symbol.equal p.Prop.source (sym "Invitation"))
      | None -> Alcotest.fail "not found")

let test_duplicate_rejected () =
  with_backends (fun base ->
      ok (Base.insert base (mk "d1" "a" "l" "b"));
      match Base.insert base (mk "d1" "c" "l" "d") with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "duplicate id accepted")

let test_remove () =
  with_backends (fun base ->
      ok (Base.insert base (mk "r1" "a" "l" "b"));
      let removed = ok (Base.remove base (sym "r1")) in
      check bool "removed prop returned" true (Symbol.equal removed.Prop.id (sym "r1"));
      check bool "gone" false (Base.mem base (sym "r1"));
      match Base.remove base (sym "r1") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "double remove accepted")

let populate base =
  ok (Base.insert base (mk "p1" "Invitation" "isa" "Paper"));
  ok (Base.insert base (mk "p2" "Minutes" "isa" "Paper"));
  ok (Base.insert base (mk "p3" "Invitation" "attribute" "sender"));
  ok (Base.insert base (mk "p4" "Paper" "isa" "Document"))

let test_indexes () =
  with_backends (fun base ->
      populate base;
      check Alcotest.(list string) "by_source"
        [ "p1"; "p3" ]
        (ids (Base.by_source base (sym "Invitation")));
      check Alcotest.(list string) "by_source_label" [ "p1" ]
        (ids (Base.by_source_label base (sym "Invitation") (sym "isa")));
      check Alcotest.(list string) "by_dest" [ "p1"; "p2" ]
        (ids (Base.by_dest base (sym "Paper")));
      check Alcotest.(list string) "by_label" [ "p1"; "p2"; "p4" ]
        (ids (Base.by_label base (sym "isa")));
      check Alcotest.(list string) "links"
        [ "p1" ]
        (ids
           (Base.links base ~source:(sym "Invitation") ~label:(sym "isa")
              ~dest:(sym "Paper"))))

let test_indexes_after_remove () =
  with_backends (fun base ->
      populate base;
      ignore (ok (Base.remove base (sym "p1")));
      check Alcotest.(list string) "source index updated" [ "p3" ]
        (ids (Base.by_source base (sym "Invitation")));
      check Alcotest.(list string) "dest index updated" [ "p2" ]
        (ids (Base.by_dest base (sym "Paper"))))

let test_query_pattern () =
  with_backends (fun base ->
      populate base;
      ok
        (Base.insert base
           (mk ~time:(Time.between 5 9) "p5" "Invitation" "isa" "Document"));
      check Alcotest.(list string) "query source+label"
        [ "p1"; "p5" ]
        (ids (Base.query ~source:(sym "Invitation") ~label:(sym "isa") base));
      check Alcotest.(list string) "query with valid_at"
        [ "p1" ]
        (ids
           (Base.query ~source:(sym "Invitation") ~label:(sym "isa")
              ~valid_at:2 base));
      check int "query all" 5 (List.length (Base.query base)))

let test_cardinal_and_fold () =
  with_backends (fun base ->
      populate base;
      check int "cardinal" 4 (Base.cardinal base);
      check int "fold counts" 4 (Base.fold base (fun acc _ -> acc + 1) 0))

let test_tx_commit () =
  with_backends (fun base ->
      populate base;
      Base.begin_tx base;
      ok (Base.insert base (mk "t1" "x" "l" "y"));
      ok (Base.commit base);
      check bool "committed survives" true (Base.mem base (sym "t1")))

let test_tx_rollback () =
  with_backends (fun base ->
      populate base;
      Base.begin_tx base;
      ok (Base.insert base (mk "t2" "x" "l" "y"));
      ignore (ok (Base.remove base (sym "p1")));
      ok (Base.rollback base);
      check bool "insert undone" false (Base.mem base (sym "t2"));
      check bool "remove undone" true (Base.mem base (sym "p1"));
      check int "cardinality restored" 4 (Base.cardinal base))

let test_tx_nested () =
  with_backends (fun base ->
      Base.begin_tx base;
      ok (Base.insert base (mk "n1" "a" "l" "b"));
      Base.begin_tx base;
      ok (Base.insert base (mk "n2" "a" "l" "b"));
      ok (Base.rollback base);
      check bool "inner rolled back" false (Base.mem base (sym "n2"));
      check bool "outer kept" true (Base.mem base (sym "n1"));
      ok (Base.commit base);
      check int "depth zero" 0 (Base.tx_depth base))

let test_tx_nested_outer_rollback () =
  with_backends (fun base ->
      Base.begin_tx base;
      ok (Base.insert base (mk "o1" "a" "l" "b"));
      Base.begin_tx base;
      ok (Base.insert base (mk "o2" "a" "l" "b"));
      ok (Base.commit base);
      ok (Base.rollback base);
      check bool "nested commit undone by outer rollback" false
        (Base.mem base (sym "o2"));
      check bool "outer insert undone" false (Base.mem base (sym "o1")))

let test_tx_errors () =
  with_backends (fun base ->
      (match Base.commit base with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "commit without tx");
      match Base.rollback base with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "rollback without tx")

let test_with_tx () =
  with_backends (fun base ->
      let r =
        Base.with_tx base (fun () ->
            ok (Base.insert base (mk "w1" "a" "l" "b"));
            Ok 42)
      in
      check int "with_tx result" 42 (ok r);
      check bool "kept" true (Base.mem base (sym "w1"));
      let r2 : (unit, string) result =
        Base.with_tx base (fun () ->
            ok (Base.insert base (mk "w2" "a" "l" "b"));
            Error "boom")
      in
      (match r2 with Error "boom" -> () | _ -> Alcotest.fail "error passed through");
      check bool "rolled back" false (Base.mem base (sym "w2")))

let test_on_change () =
  with_backends (fun base ->
      let events = ref [] in
      ignore (Base.on_change base (fun c -> events := c :: !events));
      ok (Base.insert base (mk "c1" "a" "l" "b"));
      ignore (ok (Base.remove base (sym "c1")));
      check int "two events" 2 (List.length !events);
      match !events with
      | [ Base.Removed _; Base.Added _ ] -> ()
      | _ -> Alcotest.fail "unexpected event order")

let test_off_change () =
  with_backends (fun base ->
      let a = ref 0 and b = ref 0 in
      let sub = Base.on_change base (fun _ -> incr a) in
      ignore (Base.on_change base (fun _ -> incr b));
      ok (Base.insert base (mk "u1" "a" "l" "b"));
      Base.off_change base sub;
      ok (Base.insert base (mk "u2" "a" "l" "b"));
      check int "unsubscribed listener stopped" 1 !a;
      check int "other listener still fires" 2 !b;
      (* unknown ids are ignored *)
      Base.off_change base sub)

let test_rollback_reemits_changes () =
  with_backends (fun base ->
      populate base;
      let events = ref [] in
      ignore (Base.on_change base (fun c -> events := c :: !events));
      Base.begin_tx base;
      ok (Base.insert base (mk "t9" "x" "l" "y"));
      ignore (ok (Base.remove base (sym "p1")));
      events := [];
      ok (Base.rollback base);
      (* undo happens in reverse order: re-add p1, then drop t9 *)
      match List.rev !events with
      | [ Base.Added p; Base.Removed q ] ->
        check bool "re-added p1" true (Symbol.equal p.Prop.id (sym "p1"));
        check bool "removed t9" true (Symbol.equal q.Prop.id (sym "t9"))
      | _ -> Alcotest.fail "rollback did not re-emit both changes")

let test_with_tx_exception_reemits () =
  with_backends (fun base ->
      populate base;
      let events = ref [] in
      ignore (Base.on_change base (fun c -> events := c :: !events));
      (try
         ignore
           (Base.with_tx base (fun () ->
                ok (Base.insert base (mk "e1" "x" "l" "y"));
                failwith "boom"))
       with Failure _ -> ());
      check bool "rolled back" false (Base.mem base (sym "e1"));
      match !events with
      | [ Base.Removed p; Base.Added q ] ->
        check bool "same prop removed" true (Symbol.equal p.Prop.id (sym "e1"));
        check bool "same prop added" true (Symbol.equal q.Prop.id (sym "e1"))
      | _ -> Alcotest.fail "exception rollback did not replay the undo")

let test_nested_rollback_reemits () =
  with_backends (fun base ->
      let events = ref [] in
      ignore (Base.on_change base (fun c -> events := c :: !events));
      Base.begin_tx base;
      ok (Base.insert base (mk "s1" "a" "l" "b"));
      Base.begin_tx base;
      ok (Base.insert base (mk "s2" "a" "l" "b"));
      events := [];
      ok (Base.rollback base);
      (* only the savepoint's changes are replayed *)
      (match !events with
      | [ Base.Removed p ] ->
        check bool "inner insert undone" true (Symbol.equal p.Prop.id (sym "s2"))
      | _ -> Alcotest.fail "savepoint rollback should emit exactly one event");
      check bool "outer insert intact" true (Base.mem base (sym "s1"));
      ok (Base.commit base))

let test_query_valid_at () =
  with_backends (fun base ->
      ok (Base.insert base (mk ~time:(Time.between 0 4) "v1" "a" "l" "b"));
      ok (Base.insert base (mk ~time:(Time.between 5 9) "v2" "a" "l" "b"));
      ok (Base.insert base (mk "v3" "a" "l" "b"));
      check Alcotest.(list string) "valid at 2" [ "v1"; "v3" ]
        (ids (Base.query ~valid_at:2 base));
      check Alcotest.(list string) "valid at 7" [ "v2"; "v3" ]
        (ids (Base.query ~valid_at:7 base));
      check Alcotest.(list string) "valid at 100" [ "v3" ]
        (ids (Base.query ~valid_at:100 base));
      check Alcotest.(list string) "valid_at composes with dest index"
        [ "v1"; "v3" ]
        (ids (Base.query ~dest:(sym "b") ~valid_at:0 base)))

let test_persistence_roundtrip () =
  let base = Base.create () in
  populate base;
  ok
    (Base.insert base
       (mk ~time:(Time.named "version17" 1 8) "p9" "In vitation\ttab"
          "weird\nlabel" "Paper"));
  let text = Base.to_serialized base in
  let base' = ok (Base.of_serialized text) in
  check int "same cardinality" (Base.cardinal base) (Base.cardinal base');
  List.iter
    (fun (p : Prop.t) ->
      match Base.find base' p.id with
      | Some q -> check bool (Symbol.name p.id) true (Prop.equal p q)
      | None -> Alcotest.failf "missing %s" (Symbol.name p.id))
    (Base.to_list base)

let test_persistence_rejects_garbage () =
  match Base.of_serialized "not a proposition line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* qcheck: random insert/remove sequences keep indexes consistent with a
   model list *)
let prop_store_model =
  QCheck.Test.make ~name:"store agrees with model list" ~count:100
    QCheck.(list (pair (int_range 0 20) bool))
    (fun ops ->
      let base = Base.create () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (k, ins) ->
          let id = "q" ^ string_of_int k in
          if ins then begin
            let p = mk id ("src" ^ string_of_int (k mod 3)) "lab" "dst" in
            match Base.insert base p with
            | Ok () ->
              if Hashtbl.mem model id then
                QCheck.Test.fail_reportf "dup accepted at step %d" i
              else Hashtbl.add model id p
            | Error _ ->
              if not (Hashtbl.mem model id) then
                QCheck.Test.fail_reportf "fresh insert rejected at step %d" i
          end
          else
            match Base.remove base (sym id) with
            | Ok _ ->
              if not (Hashtbl.mem model id) then
                QCheck.Test.fail_reportf "phantom remove at step %d" i
              else Hashtbl.remove model id
            | Error _ ->
              if Hashtbl.mem model id then
                QCheck.Test.fail_reportf "remove failed at step %d" i)
        ops;
      Base.cardinal base = Hashtbl.length model
      && Hashtbl.fold (fun id _ acc -> acc && Base.mem base (sym id)) model true)

let prop_rollback_restores =
  QCheck.Test.make ~name:"rollback restores exact state" ~count:60
    QCheck.(pair (list (int_range 0 15)) (list (int_range 0 15)))
    (fun (before, inside) ->
      let base = Base.create () in
      List.iter
        (fun k ->
          ignore (Base.insert base (mk ("b" ^ string_of_int k) "s" "l" "d")))
        before;
      let canon s = List.sort String.compare (String.split_on_char '\n' s) in
      let snapshot = canon (Base.to_serialized base) in
      Base.begin_tx base;
      List.iter
        (fun k ->
          ignore (Base.insert base (mk ("i" ^ string_of_int k) "s" "l" "d"));
          ignore (Base.remove base (sym ("b" ^ string_of_int k))))
        inside;
      (match Base.rollback base with Ok () -> () | Error _ -> ());
      snapshot = canon (Base.to_serialized base))

(* qcheck: every backend is observationally identical under random
   insert/remove/clear sequences *)
let prop_backends_agree =
  QCheck.Test.make ~name:"mem, log, nocompact and arena backends agree"
    ~count:200
    QCheck.(list (int_range 0 9999))
    (fun ops ->
      let bases =
        List.map
          (fun backend -> Base.create ~backend ())
          [ `Mem; `Log; `Log_nocompact; `Arena ]
      in
      List.iter
        (fun n ->
          let id = "q" ^ string_of_int (n mod 16) in
          let apply base =
            match n mod 100 with
            | op when op < 55 ->
              ignore
                (Base.insert base
                   (mk id ("src" ^ string_of_int (n mod 4)) "lab" "dst"))
            | op when op < 97 -> ignore (Base.remove base (sym id))
            | _ -> Base.clear base
          in
          List.iter apply bases)
        ops;
      let canon base =
        List.sort compare (String.split_on_char '\n' (Base.to_serialized base))
      in
      let views base =
        ( canon base,
          Base.cardinal base,
          ids (Base.by_source base (sym "src1")),
          ids (Base.by_label base (sym "lab")) )
      in
      match List.map views bases with
      | m :: rest -> List.for_all (fun v -> v = m) rest
      | [] -> false)

(* Every index-selection arm of [Base.query]: the no-residual fast path
   must return exactly the indexed list (source+label, source-only,
   label-only, unconstrained), and each residual combination must agree
   with a reference filter over [to_list] — under all four backends. *)
let test_query_residual_fast_path () =
  with_backends (fun base ->
      List.iter
        (fun (id, s, l, d, t0, t1) ->
          ok (Base.insert base (mk ~time:(Time.between t0 t1) id s l d)))
        [
          ("q1", "a", "attr", "x", 0, 10);
          ("q2", "a", "attr", "y", 5, 15);
          ("q3", "a", "isa", "x", 0, 10);
          ("q4", "b", "attr", "x", 0, 10);
          ("q5", "b", "isa", "y", 20, 30);
        ];
      let reference ?source ?label ?dest ?valid_at () =
        List.filter
          (fun (p : Prop.t) ->
            (match source with None -> true | Some x -> Symbol.equal p.source x)
            && (match label with None -> true | Some l -> Symbol.equal p.label l)
            && (match dest with None -> true | Some y -> Symbol.equal p.dest y)
            &&
            match valid_at with
            | None -> true
            | Some pt -> Time.valid_at p.time pt)
          (Base.to_list base)
      in
      let agree name ?source ?label ?dest ?valid_at () =
        check Alcotest.(list string) name
          (ids (reference ?source ?label ?dest ?valid_at ()))
          (ids (Base.query ?source ?label ?dest ?valid_at base))
      in
      let a = sym "a" and attr = sym "attr" and x = sym "x" in
      (* no-residual arms: the indexed list is returned as-is *)
      agree "source+label" ~source:a ~label:attr ();
      agree "source only" ~source:a ();
      agree "label only" ~label:attr ();
      agree "unconstrained" ();
      (* residual arms: dest narrows a source index; label narrows dest *)
      agree "source+label+dest" ~source:a ~label:attr ~dest:x ();
      agree "source+dest" ~source:a ~dest:x ();
      agree "dest only" ~dest:x ();
      agree "dest+label" ~dest:x ~label:attr ();
      (* valid_at forces the filter on every arm, including no-residual *)
      agree "source+label at t" ~source:a ~label:attr ~valid_at:7 ();
      agree "label at t" ~label:attr ~valid_at:12 ();
      agree "unconstrained at t" ~valid_at:25 ();
      agree "dest at t" ~dest:x ~valid_at:3 ();
      (* empty results through both paths *)
      agree "missing source" ~source:(sym "zz") ();
      agree "missing combo" ~source:a ~label:(sym "isa") ~dest:(sym "y") ())

let suite =
  [
    ("insert and find", `Quick, test_insert_find);
    ("duplicate rejected", `Quick, test_duplicate_rejected);
    ("remove", `Quick, test_remove);
    ("indexes", `Quick, test_indexes);
    ("indexes after remove", `Quick, test_indexes_after_remove);
    ("query pattern", `Quick, test_query_pattern);
    ("cardinal and fold", `Quick, test_cardinal_and_fold);
    ("tx commit", `Quick, test_tx_commit);
    ("tx rollback", `Quick, test_tx_rollback);
    ("tx nested", `Quick, test_tx_nested);
    ("tx nested outer rollback", `Quick, test_tx_nested_outer_rollback);
    ("tx errors", `Quick, test_tx_errors);
    ("with_tx", `Quick, test_with_tx);
    ("on_change", `Quick, test_on_change);
    ("off_change", `Quick, test_off_change);
    ("rollback re-emits changes", `Quick, test_rollback_reemits_changes);
    ("with_tx exception re-emits", `Quick, test_with_tx_exception_reemits);
    ("nested rollback re-emits", `Quick, test_nested_rollback_reemits);
    ("query valid_at", `Quick, test_query_valid_at);
    ("query residual fast path", `Quick, test_query_residual_fast_path);
    ("persistence roundtrip", `Quick, test_persistence_roundtrip);
    ("persistence rejects garbage", `Quick, test_persistence_rejects_garbage);
    QCheck_alcotest.to_alcotest prop_store_model;
    QCheck_alcotest.to_alcotest prop_rollback_restores;
    QCheck_alcotest.to_alcotest prop_backends_agree;
  ]
