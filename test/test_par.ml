(* The multicore contract: pool primitives behave exactly like their
   sequential counterparts, the interner survives concurrent domains,
   and every parallel evaluation path (datalog, consistency, allen)
   produces output identical to the sequential code at 1, 2 and 4
   domains. *)

open Kernel
module T = Logic.Term
module Datalog = Logic.Datalog
module Pool = Par.Pool
module Allen = Temporal.Allen
module Kb = Cml.Kb
module Cons = Cml.Consistency

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let v = T.var
let s = T.sym

(* shared pools, reused by every test in the suite (joined at exit) *)
let pool1 = Pool.create ~domains:1
let pool2 = Pool.create ~domains:2
let pool4 = Pool.create ~domains:4
let pools = [ ("1", pool1); ("2", pool2); ("4", pool4) ]

(* pool primitives ------------------------------------------------------ *)

let test_map_array () =
  let arr = Array.init 1000 (fun i -> i) in
  let expect = Array.map (fun x -> (x * x) + 1) arr in
  List.iter
    (fun (name, pool) ->
      check bool
        ("map_array ≡ Array.map at " ^ name ^ " domains")
        true
        (Pool.map_array ~pool (fun x -> (x * x) + 1) arr = expect))
    pools;
  check bool "map_array without pool" true
    (Pool.map_array (fun x -> (x * x) + 1) arr = expect);
  check bool "map_array empty" true (Pool.map_array ~pool:pool4 succ [||] = [||]);
  check bool "map_list preserves order" true
    (Pool.map_list ~pool:pool4 succ [ 5; 1; 4; 1 ] = [ 6; 2; 5; 2 ])

let test_parallel_for () =
  List.iter
    (fun (name, pool) ->
      let n = 503 in
      let hits = Array.make n 0 in
      (* each index is written by exactly one chunk *)
      Pool.parallel_for ~pool n (fun i -> hits.(i) <- hits.(i) + 1);
      check bool
        ("parallel_for covers each index once at " ^ name ^ " domains")
        true
        (Array.for_all (fun c -> c = 1) hits))
    pools

exception Boom of int

let test_exceptions () =
  (try
     ignore
       (Pool.map_array ~pool:pool4
          (fun i -> if i mod 10 = 3 then raise (Boom i) else i)
          (Array.init 100 (fun i -> i)));
     Alcotest.fail "expected Boom"
   with Boom _ -> ());
  (* the pool survives a failed batch *)
  check bool "pool usable after exception" true
    (Pool.map_array ~pool:pool4 succ [| 1; 2; 3 |] = [| 2; 3; 4 |]);
  try
    ignore (Pool.run pool4 (fun () -> raise (Boom 42)));
    Alcotest.fail "expected Boom from run"
  with Boom i -> check int "run re-raises payload" 42 i

let test_run_and_stats () =
  let before = (Pool.stats pool2).Pool.tasks in
  check int "run returns value" 7 (Pool.run pool2 (fun () -> 3 + 4));
  check bool "run executes off the caller or sequentially" true
    (Pool.run pool2 (fun () -> 1 + 1) = 2);
  let after = (Pool.stats pool2).Pool.tasks in
  check bool "tasks counted" true (after > before);
  check int "pool size" 2 (Pool.size pool2);
  check int "degenerate pool clamps to 1" 1 (Pool.size (Pool.create ~domains:0))

let test_nested_fallback () =
  (* a parallel call inside a pool task degrades to sequential instead
     of deadlocking on the same pool *)
  let out =
    Pool.map_array ~pool:pool2
      (fun i ->
        check bool "inside task" true (Pool.in_worker ());
        Array.fold_left ( + ) 0
          (Pool.map_array ~pool:pool2 (fun x -> x * i) [| 1; 2; 3 |]))
      (Array.init 8 (fun i -> i))
  in
  check bool "nested results correct" true
    (out = Array.init 8 (fun i -> 6 * i));
  check bool "flag cleared outside tasks" false (Pool.in_worker ())

(* symbol interner under domains ---------------------------------------- *)

let test_symbol_stress () =
  (* 4 domains x 10k mixed intern/lookup over an overlapping word set:
     every domain must see one stable id per string and [name] must
     round-trip *)
  let iterations = 10_000 in
  let word k = "stress_word_" ^ string_of_int k in
  let worker seed () =
    let errs = ref 0 in
    for i = 0 to iterations - 1 do
      let w = word ((i * seed) mod 997) in
      let id = Symbol.intern w in
      if Symbol.name id <> w then incr errs;
      let id' = Symbol.intern w in
      if not (Symbol.equal id id') then incr errs
    done;
    !errs
  in
  let domains = List.init 4 (fun k -> Domain.spawn (worker (k + 1))) in
  let errs = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  check int "no intern/name mismatches across domains" 0 errs;
  (* distinct strings still map to distinct symbols *)
  let ids = List.init 997 (fun k -> Symbol.to_int (Symbol.intern (word k))) in
  check int "997 distinct ids" 997
    (List.length (List.sort_uniq compare ids))

(* mem-store index hygiene (satellite fix) ------------------------------- *)

let test_mem_store_bucket_drain () =
  let module Mem = Store.Mem_store in
  let st = Mem.create () in
  let n = 100 in
  let props =
    List.init n (fun i ->
        Prop.make ~id:(Prop.fresh_id ())
          ~source:(Symbol.intern ("src" ^ string_of_int (i mod 7)))
          ~label:(Symbol.intern ("lab" ^ string_of_int (i mod 5)))
          ~dest:(Symbol.intern ("dst" ^ string_of_int (i mod 3)))
          ())
  in
  List.iter (fun p -> check bool "inserted" true (Mem.insert st p)) props;
  List.iter (fun (p : Prop.t) -> ignore (Mem.remove st p.id)) props;
  check int "primary empty" 0 (Mem.cardinal st);
  check int "by_source empty" 0 (Symbol.Tbl.length st.Mem.by_source);
  check int "by_source_label empty" 0 (Mem.Pair_tbl.length st.Mem.by_source_label);
  check int "by_dest empty" 0 (Symbol.Tbl.length st.Mem.by_dest);
  check int "by_label empty" 0 (Symbol.Tbl.length st.Mem.by_label)

(* datalog: parallel ≡ sequential ---------------------------------------- *)

(* A stratified program exercising recursion, join order and negation:
     r(X,Y)  :- e(X,Y).            r(X,Y) :- e(X,Z), r(Z,Y).
     nr(X,Y) :- e(X,Y), not r(Y,X).
     big(X)  :- n(X), not e(X,X).
   over random edge/node sets. *)
let build_program edges nodes =
  let d = Datalog.create () in
  let node k = s ("n" ^ string_of_int k) in
  List.iter
    (fun (a, b) -> ignore (Datalog.add_fact d (T.atom "e" [ node a; node b ])))
    edges;
  List.iter
    (fun a -> ignore (Datalog.add_fact d (T.atom "n" [ node a ])))
    nodes;
  ok
    (Datalog.add_clause d
       (T.clause (T.atom "r" [ v "X"; v "Y" ])
          [ T.Pos (T.atom "e" [ v "X"; v "Y" ]) ]));
  ok
    (Datalog.add_clause d
       (T.clause (T.atom "r" [ v "X"; v "Y" ])
          [ T.Pos (T.atom "e" [ v "X"; v "Z" ]);
            T.Pos (T.atom "r" [ v "Z"; v "Y" ]) ]));
  ok
    (Datalog.add_clause d
       (T.clause (T.atom "nr" [ v "X"; v "Y" ])
          [ T.Pos (T.atom "e" [ v "X"; v "Y" ]);
            T.Neg (T.atom "r" [ v "Y"; v "X" ]) ]));
  ok
    (Datalog.add_clause d
       (T.clause (T.atom "big" [ v "X" ])
          [ T.Pos (T.atom "n" [ v "X" ]); T.Neg (T.atom "e" [ v "X"; v "X" ]) ]));
  d

let materialization d pred =
  List.sort compare
    (List.map
       (List.map (fun t -> Format.asprintf "%a" T.pp t))
       (Datalog.facts_of d (Symbol.intern pred)))

let idb_preds = [ "r"; "nr"; "big" ]

let test_datalog_differential =
  QCheck.Test.make ~name:"datalog: parallel solve ≡ sequential (1/2/4 domains)"
    ~count:30
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 25) (pair (int_range 0 7) (int_range 0 7)))
        (list_of_size (Gen.int_range 0 8) (int_range 0 7)))
    (fun (edges, nodes) ->
      let reference = build_program edges nodes in
      ok (Datalog.solve reference);
      let expect = List.map (materialization reference) idb_preds in
      List.for_all
        (fun (_, pool) ->
          let d = build_program edges nodes in
          ok (Datalog.solve ~pool d);
          List.map (materialization d) idb_preds = expect)
        pools
      && begin
           (* the naive strategy ignores the pool and must agree too *)
           let d = build_program edges nodes in
           ok (Datalog.solve ~strategy:`Naive ~pool:pool4 d);
           List.map (materialization d) idb_preds = expect
         end)

let test_datalog_pool_chain () =
  (* a deeper chase than the random programs: 120-element chain *)
  let edges = List.init 120 (fun i -> (i, i + 1)) in
  let d_seq = Datalog.create () in
  let d_par = Datalog.create () in
  let node k = s ("c" ^ string_of_int k) in
  List.iter
    (fun d ->
      List.iter
        (fun (a, b) ->
          ignore (Datalog.add_fact d (T.atom "e" [ node a; node b ])))
        edges;
      ok
        (Datalog.add_clause d
           (T.clause (T.atom "p" [ v "X"; v "Y" ])
              [ T.Pos (T.atom "e" [ v "X"; v "Y" ]) ]));
      ok
        (Datalog.add_clause d
           (T.clause (T.atom "p" [ v "X"; v "Y" ])
              [ T.Pos (T.atom "e" [ v "X"; v "Z" ]);
                T.Pos (T.atom "p" [ v "Z"; v "Y" ]) ])))
    [ d_seq; d_par ];
  ok (Datalog.solve d_seq);
  ok (Datalog.solve ~pool:pool4 d_par);
  check int "chain closure size" (121 * 120 / 2) (Datalog.derived_count d_par);
  check bool "chain closure identical" true
    (List.sort compare (Datalog.facts_of d_seq (Symbol.intern "p"))
    = List.sort compare (Datalog.facts_of d_par (Symbol.intern "p")))

(* consistency: parallel ≡ sequential ------------------------------------ *)

let violating_kb () =
  let kb = Kb.create () in
  List.iter
    (fun n -> ignore (ok (Kb.declare kb n)))
    [ "Doc"; "Person"; "Team"; "report"; "alice"; "bob" ];
  ignore (ok (Kb.add_instanceof kb ~inst:"report" ~cls:"Doc"));
  ignore (ok (Kb.add_instanceof kb ~inst:"alice" ~cls:"Person"));
  ignore (ok (Kb.add_isa kb ~sub:"Team" ~super:"Person"));
  ignore
    (ok (Kb.add_attribute kb ~source:"Doc" ~label:"author" ~dest:"Person"));
  (* inject violations past the axiom checks: dangling endpoints *)
  List.iter
    (fun (src, lab, dst) ->
      ignore
        (Store.Base.insert (Kb.base kb)
           (Prop.make ~id:(Prop.fresh_id ()) ~source:(Symbol.intern src)
              ~label:(Symbol.intern lab) ~dest:(Symbol.intern dst) ())))
    [
      ("report", "cites", "NoSuchDoc");
      ("Ghost", "haunts", "report");
      ("bob", "author", "report");
    ];
  kb

let test_consistency_differential () =
  let kb = violating_kb () in
  let expect = Cons.check_all kb in
  check bool "violating kb does violate" true (expect <> []);
  List.iter
    (fun (name, pool) ->
      let got = Cons.check_all ~pool kb in
      check bool
        ("check_all at " ^ name ^ " domains: same violations, same order")
        true (got = expect))
    pools;
  (* clean KB stays clean in parallel *)
  let clean = Kb.create () in
  List.iter
    (fun (name, pool) ->
      check bool ("bootstrap clean at " ^ name ^ " domains") true
        (Cons.check_all ~pool clean = []))
    pools

(* allen: parallel ≡ sequential ------------------------------------------ *)

let rand_set st =
  (* non-empty random relation set *)
  let set = ref Allen.empty in
  List.iter
    (fun r ->
      if QCheck.Gen.bool st then set := Allen.union !set (Allen.singleton r))
    Allen.all_relations;
  if Allen.is_empty !set then Allen.singleton Allen.Before else !set

let gen_network n =
  QCheck.Gen.(
    list_size (int_range 0 (2 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) rand_set))

let matrix net =
  let n = Allen.Network.size net in
  Array.init n (fun i -> Array.init n (fun j -> Allen.Network.get net i j))

let test_allen_differential =
  let n = 10 in
  QCheck.Test.make ~name:"allen: parallel path_consistency ≡ sequential"
    ~count:40
    (QCheck.make (gen_network n))
    (fun constraints ->
      let build () =
        let net = Allen.Network.create n in
        List.iter
          (fun (i, j, set) ->
            if i <> j then Allen.Network.constrain net i j set)
          constraints;
        net
      in
      let reference = build () in
      let ref_ok = Allen.Network.path_consistency reference in
      let expect = matrix reference in
      List.for_all
        (fun (_, pool) ->
          let net = build () in
          let got_ok = Allen.Network.path_consistency ~pool net in
          got_ok = ref_ok && matrix net = expect)
        pools
      &&
      (* the pass-based closure must agree with the PC-2 worklist on
         consistency, and on the matrix when consistent *)
      let pc2 = build () in
      let pc2_ok = Allen.Network.propagate pc2 in
      pc2_ok = ref_ok && ((not ref_ok) || matrix pc2 = expect))

let test_allen_known_chain () =
  (* a meets b meets c: path consistency must tighten a-c to Before *)
  let net = Allen.Network.create 3 in
  Allen.Network.constrain net 0 1 (Allen.singleton Allen.Meets);
  Allen.Network.constrain net 1 2 (Allen.singleton Allen.Meets);
  check bool "consistent" true (Allen.Network.path_consistency ~pool:pool4 net);
  check bool "a before c" true
    (Allen.equal_set (Allen.Network.get net 0 2) (Allen.singleton Allen.Before))

let suite =
  [
    ("pool map_array / map_list", `Quick, test_map_array);
    ("pool parallel_for", `Quick, test_parallel_for);
    ("pool exception re-raise", `Quick, test_exceptions);
    ("pool run and stats", `Quick, test_run_and_stats);
    ("pool nested call falls back", `Quick, test_nested_fallback);
    ("symbol intern 4-domain stress", `Quick, test_symbol_stress);
    ("mem-store drained buckets removed", `Quick, test_mem_store_bucket_drain);
    QCheck_alcotest.to_alcotest test_datalog_differential;
    ("datalog 120-chain parallel closure", `Quick, test_datalog_pool_chain);
    ("consistency differential 1/2/4 domains", `Quick, test_consistency_differential);
    QCheck_alcotest.to_alcotest test_allen_differential;
    ("allen meets-chain tightening", `Quick, test_allen_known_chain);
  ]
