open Kernel
module S = Sexp
module Repo = Gkbms.Repository
module P = Gkbms.Persist
module Scn = Gkbms.Scenario
module Dbpl = Langs.Dbpl

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* sexp ------------------------------------------------------------------- *)

let test_sexp_roundtrip () =
  let cases =
    [
      S.Atom "plain";
      S.Atom "needs quoting";
      S.Atom "with \"quotes\" and \\ and\nnewline";
      S.Atom "";
      S.List [ S.Atom "a"; S.List [ S.Atom "b"; S.Atom "c" ]; S.Atom "d" ];
      S.List [];
    ]
  in
  List.iter
    (fun sexp ->
      let printed = S.to_string sexp in
      match S.parse printed with
      | Ok sexp' -> check bool printed true (sexp = sexp')
      | Error e -> Alcotest.failf "%s: %s" printed e)
    cases

let test_sexp_parse_errors () =
  List.iter
    (fun src ->
      match S.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S parsed" src)
    [ "("; ")"; "\"unterminated"; "a b" (* two expressions *); "" ]

let test_sexp_comments () =
  match S.parse "; a comment\n(a b) ; trailing" with
  | Ok (S.List [ S.Atom "a"; S.Atom "b" ]) -> ()
  | Ok s -> Alcotest.failf "unexpected %s" (S.to_string s)
  | Error e -> Alcotest.fail e

let test_sexp_fields () =
  let s = ok (S.parse "(rec (name X) (key a b))") in
  check Alcotest.string "field" "X" (ok (Result.bind (S.field s "name") S.as_atom));
  check bool "missing field" true (Result.is_error (S.field s "nope"))

(* artifact codecs ----------------------------------------------------------- *)

let artifact_roundtrip a =
  match P.artifact_of_sexp (P.sexp_of_artifact a) with
  | Ok a' -> a = a'
  | Error _ -> false

let test_artifact_codecs () =
  let rel =
    Dbpl.relation ~key:[ "k" ] ~name:"R" ~rec_name:"RT"
      [ Dbpl.field "k" Dbpl.Surrogate;
        Dbpl.field "xs" (Dbpl.SetOf (Dbpl.Named "X")) ]
  in
  let artifacts =
    [
      Repo.Tdl_design Scn.meeting_design_v2;
      Repo.Tdl_class Scn.minutes_class;
      Repo.Dbpl_rel rel;
      Repo.Dbpl_con
        {
          Dbpl.con_name = "C";
          con_fields = [ Dbpl.field "k" Dbpl.Surrogate ];
          def =
            Dbpl.Nest
              ( Dbpl.Union
                  ( Dbpl.Project (Dbpl.Rel "R", [ "k" ]),
                    Dbpl.SelectEq (Dbpl.Rel "R", "k", "v") ),
                [ "k" ], "ks" );
        };
      Repo.Dbpl_sel
        {
          Dbpl.sel_name = "S";
          ranges = [ ("r", "R") ];
          predicate = "SOME x (weird \"chars\")";
          sem = Some (Dbpl.Ref_integrity { child = "R"; parent = "P"; key = [ "k" ] });
        };
      Repo.Dbpl_tx
        {
          Dbpl.tx_name = "T";
          params = [ ("p", "X") ];
          body =
            [ Dbpl.Insert ("R", [ ("k", "p") ]); Dbpl.Delete ("R", "TRUE");
              Dbpl.Update ("R", [ ("k", "p") ], "k = p"); Dbpl.Call "Sub" ];
        };
      Repo.Cml_frame
        (Cml.Object_processor.frame ~classes:[ "C" ] ~supers:[ "D" ]
           ~attrs:[ ("a", "B") ] "F");
      Repo.Cml_model [ Cml.Object_processor.frame "G" ];
      Repo.Text "multi\nline \"text\"";
    ]
  in
  List.iteri
    (fun i a ->
      check bool (Printf.sprintf "artifact %d" i) true (artifact_roundtrip a))
    artifacts

let test_artifact_decode_errors () =
  match P.artifact_of_sexp (S.Atom "garbage") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage artifact decoded"

(* repository snapshots -------------------------------------------------------- *)

let test_repository_roundtrip () =
  let st = ok (Scn.run_through_conflict ()) in
  let repo = st.Scn.repo in
  let snapshot = P.save_repository repo in
  let repo2 = ok (P.load_repository snapshot) in
  (* same decisions, same propositions *)
  check Alcotest.(list string) "log preserved"
    (List.map Symbol.name (Repo.decision_log repo))
    (List.map Symbol.name (Repo.decision_log repo2));
  check int "same proposition count"
    (Store.Base.cardinal (Cml.Kb.base (Repo.kb repo)))
    (Store.Base.cardinal (Cml.Kb.base (Repo.kb repo2)));
  (* artifacts render identically *)
  List.iter
    (fun obj ->
      check bool (Symbol.name obj ^ " source preserved") true
        (Repo.source_text repo obj = Repo.source_text repo2 obj))
    (Repo.all_design_objects repo);
  (* the reason maintenance is rebuilt: conflict state survives *)
  check bool "culprit after reload" true
    (Gkbms.Backtrack.suggest_culprit repo2 <> None);
  check Alcotest.(list string) "unsupported objects preserved"
    (List.map Symbol.name (Gkbms.Backtrack.unsupported_objects repo))
    (List.map Symbol.name (Gkbms.Backtrack.unsupported_objects repo2))

let test_loaded_repo_continues () =
  let st = ok (Scn.run_through_conflict ()) in
  let snapshot = P.save_repository st.Scn.repo in
  let repo2 = ok (P.load_repository snapshot) in
  (* selective backtracking works on the reloaded history *)
  let culprit = Option.get (Gkbms.Backtrack.suggest_culprit repo2) in
  let report = ok (Gkbms.Backtrack.retract repo2 culprit ()) in
  check bool "consequences removed" true
    (List.mem "InvitationRel3" report.Gkbms.Backtrack.removed_objects);
  check bool "still consistent" true
    (Cml.Consistency.check_all (Repo.kb repo2) = []);
  (* and fresh decisions get non-colliding ids *)
  let repo3 = ok (P.load_repository snapshot) in
  let executed =
    ok
      (Gkbms.Decision.execute repo3
         ~decision_class:Gkbms.Metamodel.dec_manual_edit
         ~tool:Gkbms.Mapping.editor_tool
         ~inputs:[ ("object", Symbol.intern "InvitationRel") ]
         ~params:[ ("text", "patched") ]
         ())
  in
  check bool "fresh id distinct from history" true
    (not
       (List.mem
          (Symbol.name executed.Gkbms.Decision.decision)
          [ "dec1"; "dec2"; "dec3"; "dec4" ]))

let test_snapshot_rejects_garbage () =
  (match P.load_repository "(not-a-repo)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match P.load_repository "((" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unparsable accepted"

let test_file_roundtrip () =
  let st = ok (Scn.setup ()) in
  ignore (ok (Scn.map_move_down st));
  let path = Filename.temp_file "gkbms" ".repo" in
  ok (P.save_to_file st.Scn.repo path);
  let repo2 = ok (P.load_from_file path) in
  Sys.remove path;
  check int "one decision" 1 (List.length (Repo.decision_log repo2))

(* qcheck: snapshots round-trip on randomized repositories — a random
   chain of manual edits over the scenario baseline *)
let canon repo =
  List.sort compare
    (String.split_on_char '\n'
       (Store.Base.to_serialized (Cml.Kb.base (Repo.kb repo))))

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot roundtrips on random repositories" ~count:10
    QCheck.(list_of_size (Gen.int_range 0 4) (pair (int_range 0 999) bool))
    (fun edits ->
      let st = ok (Scn.setup ()) in
      let target = ref st.Scn.design_doc in
      List.iter
        (fun (n, chain) ->
          let executed =
            ok
              (Gkbms.Decision.execute st.Scn.repo
                 ~decision_class:Gkbms.Metamodel.dec_manual_edit
                 ~tool:Gkbms.Mapping.editor_tool
                 ~inputs:[ ("object", !target) ]
                 ~params:[ ("text", Printf.sprintf "edit #%d\n\ttabbed" n) ]
                 ())
          in
          (* sometimes keep editing the new version, sometimes branch *)
          if chain then
            match List.assoc_opt "edited" executed.Gkbms.Decision.outputs with
            | Some v -> target := v
            | None -> ())
        edits;
      let repo2 = ok (P.load_repository (P.save_repository st.Scn.repo)) in
      canon st.Scn.repo = canon repo2
      && List.map Symbol.name (Repo.decision_log st.Scn.repo)
         = List.map Symbol.name (Repo.decision_log repo2)
      && List.for_all
           (fun obj -> Repo.source_text st.Scn.repo obj = Repo.source_text repo2 obj)
           (Repo.all_design_objects st.Scn.repo))

let suite =
  [
    ("sexp roundtrip", `Quick, test_sexp_roundtrip);
    ("sexp parse errors", `Quick, test_sexp_parse_errors);
    ("sexp comments", `Quick, test_sexp_comments);
    ("sexp fields", `Quick, test_sexp_fields);
    ("artifact codecs roundtrip", `Quick, test_artifact_codecs);
    ("artifact decode errors", `Quick, test_artifact_decode_errors);
    ("repository snapshot roundtrip", `Quick, test_repository_roundtrip);
    ("loaded repository continues", `Quick, test_loaded_repo_continues);
    ("snapshot rejects garbage", `Quick, test_snapshot_rejects_garbage);
    ("file roundtrip", `Quick, test_file_roundtrip);
    QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
  ]
