open Kernel
module Crc32 = Durability.Crc32
module Wal = Durability.Wal
module Fault = Durability.Fault
module Journal = Durability.Journal
module Repo = Gkbms.Repository
module Scn = Gkbms.Scenario
module Durable = Gkbms.Durable

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let sym = Symbol.intern

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let mk ?(time = Time.always) id source label dest =
  Prop.make ~time ~id:(sym id) ~source:(sym source) ~label:(sym label)
    ~dest:(sym dest) ()

let canon base =
  List.sort compare (String.split_on_char '\n' (Store.Base.to_serialized base))

let encoded rs = List.map Wal.encode rs

(* crc32 ------------------------------------------------------------------ *)

let test_crc_vectors () =
  check string "check value" "cbf43926" (Crc32.to_hex (Crc32.of_string "123456789"));
  check string "empty" "00000000" (Crc32.to_hex (Crc32.of_string ""));
  check string "single byte" "d202ef8d" (Crc32.to_hex (Crc32.of_string "\x00"))

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Crc32.of_string s in
  let split =
    Crc32.update (Crc32.update Crc32.empty s 0 10) s 10 (String.length s - 10)
  in
  check string "incremental = whole" (Crc32.to_hex whole) (Crc32.to_hex split)

(* framing ---------------------------------------------------------------- *)

let sample_records =
  [
    Wal.Put (mk "p1" "Invitation" "isa" "Paper");
    Wal.Put (mk ~time:(Time.between 3 9) "p2" "weird id\twith\ttabs" "l" "d");
    Wal.Tomb (sym "p1");
    Wal.Decision_begin "DecMapMoveDown";
    Wal.Decision_commit "dec1";
    Wal.Decision_abort "tool failed";
    Wal.Artifact ("obj", "(text \"multi\nline\")");
    Wal.Note ("unlog", "dec1");
  ]

let write_sample () =
  let buf = Buffer.create 256 in
  let w = Wal.writer (Wal.buffer_sink buf) in
  List.iter (Wal.append w) sample_records;
  (Buffer.contents buf, Wal.bytes_written w)

let test_roundtrip () =
  let data, bytes = write_sample () in
  check int "bytes accounted" bytes (String.length data);
  let scan = Wal.scan data in
  check bool "clean tail" true (scan.Wal.truncated = None);
  check int "all bytes valid" (String.length data) scan.Wal.valid_bytes;
  check Alcotest.(list Alcotest.string) "records survive"
    (encoded sample_records)
    (encoded scan.Wal.records)

let test_codec_rejects_garbage () =
  (match Wal.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty payload decoded");
  (match Wal.decode "Zjunk" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag decoded");
  match Wal.decode (Wal.encode (Wal.Decision_commit "x") ^ "extra") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

let test_torn_tail () =
  let data, _ = write_sample () in
  let cut = String.sub data 0 (String.length data - 3) in
  let scan = Wal.scan cut in
  check bool "tail reported" true (scan.Wal.truncated <> None);
  check Alcotest.(list Alcotest.string) "all but last survive"
    (encoded
       (List.filteri
          (fun i _ -> i < List.length sample_records - 1)
          sample_records))
    (encoded scan.Wal.records);
  (* replay boundary sits exactly after the last full frame *)
  check bool "valid prefix rescans clean" true
    ((Wal.scan (String.sub cut 0 scan.Wal.valid_bytes)).Wal.truncated = None)

let test_bit_flip_detected () =
  let data, _ = write_sample () in
  (* flip one payload bit in the middle of the log *)
  let off = String.length data / 2 in
  let corrupted =
    Fault.corrupt (Fault.script ~flips:[ (off, 3) ] ()) data
  in
  let scan = Wal.scan corrupted in
  check bool "corruption reported" true (scan.Wal.truncated <> None);
  check bool "valid prefix shorter" true (scan.Wal.valid_bytes < String.length data);
  (* the surviving records are a prefix of the originals *)
  List.iteri
    (fun i r ->
      check string
        (Printf.sprintf "record %d intact" i)
        (Wal.encode (List.nth sample_records i))
        (Wal.encode r))
    scan.Wal.records

let test_bad_header () =
  let scan = Wal.scan "NOTAWAL0rest" in
  check bool "rejected" true (scan.Wal.truncated <> None);
  check int "nothing valid" 0 scan.Wal.valid_bytes

let test_implausible_length () =
  let buf = Buffer.create 64 in
  Buffer.add_string buf Wal.magic;
  (* a length field claiming 2^31 bytes *)
  Buffer.add_string buf "\xff\xff\xff\x7f\x00\x00\x00\x00payload";
  let scan = Wal.scan (Buffer.contents buf) in
  check bool "cut at bad length" true (scan.Wal.truncated <> None);
  check int "only header valid" (String.length Wal.magic) scan.Wal.valid_bytes

(* fault sink ------------------------------------------------------------- *)

let test_fault_sink_crash () =
  let inner = Buffer.create 64 in
  let sink =
    Fault.wrap
      (Fault.script ~crash_after:20 ~drop_syncs:true ())
      (Wal.buffer_sink inner)
  in
  let w = Wal.writer sink in
  List.iter (Wal.append w) sample_records;
  Wal.sync w;
  check int "everything past the crash point is lost" 20 (Buffer.length inner);
  let full, _ = write_sample () in
  check string "prefix is what a crash would leave" (String.sub full 0 20)
    (Buffer.contents inner)

(* frame resolution ------------------------------------------------------- *)

let put id = Wal.Put (mk id "s" "l" "d")

let test_resolve_commit_and_abort () =
  let r =
    Journal.resolve
      [
        put "a";
        Wal.Decision_begin "D1";
        put "b";
        Wal.Decision_commit "dec1";
        Wal.Decision_begin "D2";
        put "c";
        Wal.Decision_abort "failed";
        Wal.Decision_begin "D3";
        put "d";
      ]
  in
  check Alcotest.(list Alcotest.string) "committed decisions" [ "dec1" ]
    r.Journal.decisions;
  check Alcotest.(list Alcotest.string) "aborted" [ "failed" ] r.Journal.aborted;
  check int "dangling frame" 1 r.Journal.dangling;
  (* ops: the unframed put, then the committed frame; c and d discarded *)
  check Alcotest.(list Alcotest.string) "committed ops"
    (encoded [ put "a"; put "b"; Wal.Decision_commit "dec1" ])
    (encoded r.Journal.ops)

let test_resolve_nested () =
  let r =
    Journal.resolve
      [
        Wal.Decision_begin "outer";
        put "a";
        Wal.Decision_begin "inner";
        put "b";
        Wal.Decision_commit "dec-in";
        put "c";
        Wal.Decision_commit "dec-out";
      ]
  in
  check Alcotest.(list Alcotest.string) "inner commits with outer"
    [ "dec-in"; "dec-out" ] r.Journal.decisions;
  check Alcotest.(list Alcotest.string) "ops in log order"
    (encoded
       [ put "a"; put "b"; Wal.Decision_commit "dec-in"; put "c";
         Wal.Decision_commit "dec-out" ])
    (encoded r.Journal.ops)

let test_resolve_nested_dangling_outer () =
  let r =
    Journal.resolve
      [
        Wal.Decision_begin "outer";
        Wal.Decision_begin "inner";
        put "b";
        Wal.Decision_commit "dec-in";
      ]
  in
  (* the inner commit is staged in the outer frame, which never commits *)
  check Alcotest.(list Alcotest.string) "nothing durable" [] r.Journal.decisions;
  check int "outer dangles" 1 r.Journal.dangling;
  check int "no ops" 0 (List.length r.Journal.ops)

let test_replay_idempotent () =
  let resolved =
    Journal.resolve
      [ put "a"; put "b"; Wal.Tomb (sym "b"); Wal.Tomb (sym "zz") ]
  in
  let base = Store.Base.create () in
  let n1 = ok (Journal.replay_into base resolved) in
  check int "tomb of absent id skipped" 3 n1;
  let snapshot = canon base in
  (* replaying the same stream again must be a no-op *)
  let n2 = ok (Journal.replay_into base resolved) in
  check int "second replay applies only the remove+reinsert pair" 2 n2;
  check bool "state unchanged" true (canon base = snapshot)

(* differential crash-recovery property ----------------------------------- *)

(* Drive a store + journal through random operations with nested decision
   frames (mirroring Decision.execute: rollback re-emits compensating
   deltas into the open frame), recording a watermark of the durable
   state at every frame-depth-0 point.  Then crash at a random byte
   (optionally flipping a bit inside the kept prefix), recover, and
   require the recovered store and decision list to equal the greatest
   watermark at or below the surviving log prefix. *)

type watermark = { wm_bytes : int; wm_state : string list; wm_decs : string list }

let run_random_ops ops =
  let buf = Buffer.create 1024 in
  let w = Wal.writer (Wal.buffer_sink buf) in
  let base = Store.Base.create () in
  let journal = Journal.attach w base in
  let committed = ref [] (* chronological *) in
  let frames = ref [] (* (name, inner committed chronological) stack *) in
  let wms = ref [ { wm_bytes = 0; wm_state = canon base; wm_decs = [] } ] in
  let watermark () =
    if Journal.depth journal = 0 then
      wms :=
        {
          wm_bytes = Wal.bytes_written w;
          wm_state = canon base;
          wm_decs = !committed;
        }
        :: !wms
  in
  let ctr = ref 0 in
  List.iter
    (fun n ->
      (match n mod 100 with
      | op when op < 45 ->
        let id = "x" ^ string_of_int (n mod 17) in
        ignore (Store.Base.insert base (mk id ("s" ^ string_of_int (n mod 3)) "l" "d"))
      | op when op < 70 ->
        ignore (Store.Base.remove base (sym ("x" ^ string_of_int (n mod 17))))
      | op when op < 80 ->
        if Journal.depth journal < 3 then begin
          incr ctr;
          let name = "dec" ^ string_of_int !ctr in
          Journal.begin_decision journal name;
          Store.Base.begin_tx base;
          frames := (name, []) :: !frames
        end
      | op when op < 93 -> (
        match !frames with
        | [] -> ()
        | (name, inner) :: rest ->
          ignore (Store.Base.commit base);
          Journal.commit_decision journal name;
          (match rest with
          | [] -> committed := !committed @ inner @ [ name ]
          | (pname, pinner) :: rest' ->
            frames := (pname, pinner @ inner @ [ name ]) :: rest');
          (match rest with [] -> frames := [] | _ -> ()))
      | _ -> (
        match !frames with
        | [] -> ()
        | (_, _) :: rest ->
          (* rollback re-emits compensations into the open frame *)
          ignore (Store.Base.rollback base);
          Journal.abort_decision journal "aborted";
          frames := rest));
      watermark ())
    ops;
  (Buffer.contents buf, List.rev !wms)

let check_crash data wms ~crash ~flip =
  let flips = match flip with None -> [] | Some f -> [ f ] in
  let corrupted = Fault.corrupt (Fault.script ~crash_after:crash ~flips ()) data in
  let scan = Wal.scan corrupted in
  let resolved = Journal.resolve scan.Wal.records in
  let base = Store.Base.create () in
  match Journal.replay_into base resolved with
  | Error e -> QCheck.Test.fail_reportf "replay failed: %s" e
  | Ok _ ->
    let expected =
      List.fold_left
        (fun best wm -> if wm.wm_bytes <= scan.Wal.valid_bytes then wm else best)
        (List.hd wms) wms
    in
    if canon base <> expected.wm_state then
      QCheck.Test.fail_reportf
        "state mismatch at crash=%d valid=%d: got %d lines, want %d" crash
        scan.Wal.valid_bytes
        (List.length (canon base))
        (List.length expected.wm_state)
    else if resolved.Journal.decisions <> expected.wm_decs then
      QCheck.Test.fail_reportf
        "decision list mismatch at crash=%d: got [%s], want [%s]" crash
        (String.concat ";" resolved.Journal.decisions)
        (String.concat ";" expected.wm_decs)
    else true

let ops_gen = QCheck.(list_of_size (Gen.int_range 5 60) (int_range 0 9999))

let prop_crash_recovery_torn =
  QCheck.Test.make ~name:"recovery = committed prefix (torn tail)" ~count:400
    QCheck.(pair ops_gen (int_range 0 99999))
    (fun (ops, seed) ->
      let data, wms = run_random_ops ops in
      let crash = seed mod (String.length data + 1) in
      check_crash data wms ~crash ~flip:None)

let prop_crash_recovery_bitflip =
  QCheck.Test.make ~name:"recovery = committed prefix (bit flip)" ~count:200
    QCheck.(triple ops_gen (int_range 0 99999) (pair (int_range 0 99999) (int_range 0 7)))
    (fun (ops, seed, (off_seed, bit)) ->
      let data, wms = run_random_ops ops in
      let crash = seed mod (String.length data + 1) in
      let flip = if crash = 0 then None else Some (off_seed mod crash, bit) in
      check_crash data wms ~crash ~flip)

(* whole-repository durability -------------------------------------------- *)

let temp_dir () =
  let d = Filename.temp_file "gkbms-wal" "" in
  Sys.remove d;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_durable_roundtrip () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.setup ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  ignore (ok (Scn.map_move_down st));
  ignore (ok (Scn.normalize_invitations st));
  Durable.close d;
  let repo2, report = ok (Durable.recover ~dir ()) in
  check bool "checkpoint loaded" true report.Durable.checkpoint_loaded;
  check Alcotest.(list Alcotest.string) "both decisions recovered"
    (List.map Symbol.name (Repo.decision_log st.Scn.repo))
    (List.map Symbol.name (Repo.decision_log repo2));
  check Alcotest.(list Alcotest.string) "same propositions"
    (canon (Cml.Kb.base (Repo.kb st.Scn.repo)))
    (canon (Cml.Kb.base (Repo.kb repo2)));
  (* artifacts replayed from the log, not just the checkpoint *)
  List.iter
    (fun obj ->
      check bool (Symbol.name obj ^ " artifact recovered") true
        (Repo.source_text st.Scn.repo obj = Repo.source_text repo2 obj))
    (Repo.all_design_objects st.Scn.repo)

let test_durable_crash_prefix () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.setup ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  ignore (ok (Scn.map_move_down st));
  let state_after_first = canon (Cml.Kb.base (Repo.kb st.Scn.repo)) in
  ignore (ok (Scn.normalize_invitations st));
  Durable.close d;
  (* crash mid-commit of the second decision: tear its commit record *)
  let wal = Durable.wal_path dir in
  let ic = open_in_bin wal in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let last_commit_off =
    List.fold_left
      (fun (off, found) r ->
        let next = off + String.length (Wal.frame r) in
        match r with
        | Wal.Decision_commit _ -> (next, Some off)
        | _ -> (next, found))
      (String.length Wal.magic, None)
      (Wal.scan data).Wal.records
    |> snd |> Option.get
  in
  let oc = open_out_bin wal in
  output_string oc (String.sub data 0 (last_commit_off + 3));
  close_out oc;
  let repo2, report = ok (Durable.recover ~dir ()) in
  check bool "tail was cut" true (report.Durable.truncated <> None);
  check Alcotest.(list Alcotest.string) "first decision survives" [ "dec1" ]
    (List.map Symbol.name (Repo.decision_log repo2));
  (* the torn second decision left no partial state: its frame dangled *)
  check int "in-flight decision rolled back" 1 report.Durable.dangling_frames;
  check Alcotest.(list Alcotest.string) "state is the committed prefix"
    state_after_first
    (canon (Cml.Kb.base (Repo.kb repo2)))

let test_durable_open_continues () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.setup ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  ignore (ok (Scn.map_move_down st));
  let rel = st.Scn.invitation_rel in
  Durable.close d;
  (* reopen: recover, re-checkpoint, and keep working durably *)
  let d2, _report = ok (Durable.open_ ~dir ()) in
  let repo2 = Durable.repo d2 in
  let executed =
    ok
      (Gkbms.Decision.execute repo2
         ~decision_class:Gkbms.Metamodel.dec_manual_edit
         ~tool:Gkbms.Mapping.editor_tool
         ~inputs:[ ("object", rel) ]
         ~params:[ ("text", "patched after recovery") ]
         ())
  in
  Durable.close d2;
  let repo3, _ = ok (Durable.recover ~dir ()) in
  check int "both generations of decisions" 2
    (List.length (Repo.decision_log repo3));
  check bool "second-generation decision present" true
    (List.exists
       (Symbol.equal executed.Gkbms.Decision.decision)
       (Repo.decision_log repo3))

let test_durable_aborted_not_resurrected () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.setup ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  ignore (ok (Scn.map_move_down st));
  (* a failing decision: the editor aborts without its text parameter,
     after the frame has opened *)
  (match
     Gkbms.Decision.execute st.Scn.repo
       ~decision_class:Gkbms.Metamodel.dec_manual_edit
       ~tool:Gkbms.Mapping.editor_tool
       ~inputs:[ ("object", st.Scn.invitation_rel) ]
       ~params:[] ()
   with
  | Ok _ -> ()
  | Error _ -> ());
  Durable.close d;
  let repo2, _report = ok (Durable.recover ~dir ()) in
  check Alcotest.(list Alcotest.string) "recovered log = live log"
    (List.map Symbol.name (Repo.decision_log st.Scn.repo))
    (List.map Symbol.name (Repo.decision_log repo2));
  check Alcotest.(list Alcotest.string) "recovered state = live state"
    (canon (Cml.Kb.base (Repo.kb st.Scn.repo)))
    (canon (Cml.Kb.base (Repo.kb repo2)))

let test_durable_checkpoint_truncates () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.setup ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  ignore (ok (Scn.map_move_down st));
  check bool "log grew" true (Durable.wal_records d > 0);
  ok (Durable.checkpoint d);
  check int "log truncated" 0 (Durable.wal_records d);
  ignore (ok (Scn.normalize_invitations st));
  Durable.close d;
  let repo2, report = ok (Durable.recover ~dir ()) in
  check bool "suffix replayed over checkpoint" true
    (report.Durable.replayed_ops > 0);
  check Alcotest.(list Alcotest.string) "nothing lost"
    (List.map Symbol.name (Repo.decision_log st.Scn.repo))
    (List.map Symbol.name (Repo.decision_log repo2))

let test_durable_retraction_survives () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.run_through_conflict ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  ignore (ok (Scn.resolve_conflict st));
  Durable.close d;
  let repo2, _ = ok (Durable.recover ~dir ()) in
  check Alcotest.(list Alcotest.string) "retraction survives recovery"
    (List.map Symbol.name (Repo.decision_log st.Scn.repo))
    (List.map Symbol.name (Repo.decision_log repo2))

(* a warm restart is a fresh process: the global proposition id counter
   restarts at zero, and recovery must re-align it so the first
   post-restart decision does not mint ids colliding with recovered
   propositions (seen as "proposition id p1 already present" on a
   restarted replication leader's first write) *)
let test_recover_realigns_prop_ids () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.setup ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  ignore (ok (Scn.map_move_down st));
  Durable.close d;
  Kernel.Prop.reset_ids ();
  let repo2, _ = ok (Durable.recover ~dir ()) in
  (match
     Repo.new_object repo2 ~name:"FreshAfterRestart"
       ~cls:Gkbms.Metamodel.dbpl_object (Repo.Text "v0")
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-restart insert refused: %s" e);
  check bool "object landed" true
    (List.exists
       (fun o -> Symbol.name o = "FreshAfterRestart")
       (Repo.all_design_objects repo2))

(* a retraction leaves a gap in the dec<n> sequence; recovery must park
   the decision counter past the maximum, not in the gap, or the first
   post-restart commit re-issues a live decision's id (and replication
   followers then skip its frame as an already-applied overlap) *)
let test_recover_realigns_decision_counter () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.run_through_conflict ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  ignore (ok (Scn.resolve_conflict st));
  Durable.close d;
  let next_live = Repo.fresh_decision_id st.Scn.repo in
  let repo2, _ = ok (Durable.recover ~dir ()) in
  check string "fresh decision id skips the retraction gap" next_live
    (Repo.fresh_decision_id repo2)

(* mid-log offset reading (replication frame shipping) -------------------- *)

(* every frame-start offset of [data]'s valid prefix, plus the end
   boundary (so the last entry is exactly [valid_bytes]) *)
let frame_boundaries data =
  let scan = Wal.scan data in
  let offs, last =
    List.fold_left
      (fun (offs, off) r -> (off :: offs, off + String.length (Wal.frame r)))
      ([], Wal.header_bytes) scan.Wal.records
  in
  List.rev (last :: offs)

let test_scan_from_every_boundary () =
  let data, _ = write_sample () in
  let bounds = frame_boundaries data in
  check int "one boundary per frame plus the end"
    (List.length sample_records + 1)
    (List.length bounds);
  List.iteri
    (fun i off ->
      let scan = Wal.scan_from data ~offset:off in
      check bool (Printf.sprintf "clean at boundary %d" i) true
        (scan.Wal.truncated = None);
      check Alcotest.(list Alcotest.string)
        (Printf.sprintf "suffix from boundary %d" i)
        (encoded (List.filteri (fun j _ -> j >= i) sample_records))
        (encoded scan.Wal.records);
      check int
        (Printf.sprintf "valid to the end from boundary %d" i)
        (String.length data) scan.Wal.valid_bytes)
    bounds

let test_scan_from_headerless_chunk () =
  (* shipped chunks carry no header: scan them with expect_header off *)
  let data, _ = write_sample () in
  let chunk =
    String.sub data Wal.header_bytes (String.length data - Wal.header_bytes)
  in
  let scan = Wal.scan_from ~expect_header:false chunk ~offset:0 in
  check bool "clean" true (scan.Wal.truncated = None);
  check Alcotest.(list Alcotest.string) "all records"
    (encoded sample_records) (encoded scan.Wal.records);
  check int "all bytes consumed" (String.length chunk) scan.Wal.valid_bytes;
  (* with the header expected, the same bytes are rejected *)
  let rejected = Wal.scan_from chunk ~offset:0 in
  check bool "headerless bytes rejected when header expected" true
    (rejected.Wal.truncated <> None && rejected.Wal.records = [])

let test_scan_from_torn_final_frame () =
  let data, _ = write_sample () in
  let bounds = frame_boundaries data in
  let mid = List.nth bounds (List.length bounds / 2) in
  let last_start = List.nth bounds (List.length bounds - 2) in
  let cut = String.sub data 0 (String.length data - 2) in
  let scan = Wal.scan_from cut ~offset:mid in
  check bool "torn tail reported" true (scan.Wal.truncated <> None);
  check Alcotest.(list Alcotest.string) "mid-log suffix minus the torn frame"
    (encoded
       (List.filteri
          (fun j _ ->
            j >= List.length bounds / 2 && j < List.length sample_records - 1)
          sample_records))
    (encoded scan.Wal.records);
  check int "scan boundary before the torn frame" last_start
    scan.Wal.valid_bytes;
  (* once the frame's bytes complete, resuming at the boundary reads
     exactly the one remaining record — the follower resume path *)
  let resumed = Wal.scan_from data ~offset:scan.Wal.valid_bytes in
  check bool "resume is clean" true (resumed.Wal.truncated = None);
  check Alcotest.(list Alcotest.string) "resume reads the final record"
    (encoded [ List.nth sample_records (List.length sample_records - 1) ])
    (encoded resumed.Wal.records)

(* randomized extension of the crash suite: at any frame boundary of any
   crashed log, scan_from agrees with the full scan's suffix *)
let prop_scan_from_is_suffix =
  QCheck.Test.make ~name:"scan_from = scan suffix (random crashes and offsets)"
    ~count:200
    QCheck.(triple ops_gen (int_range 0 99999) (int_range 0 99999))
    (fun (ops, crash_seed, idx_seed) ->
      let data, _ = run_random_ops ops in
      let crash = crash_seed mod (String.length data + 1) in
      let cut = String.sub data 0 crash in
      let full = Wal.scan cut in
      if String.length cut < Wal.header_bytes then
        (* no header survived: scan_from must reject like scan does *)
        let s = Wal.scan_from cut ~offset:0 in
        s.Wal.records = [] && s.Wal.valid_bytes = 0
      else begin
        let bounds = frame_boundaries cut in
        let idx = idx_seed mod List.length bounds in
        let s = Wal.scan_from cut ~offset:(List.nth bounds idx) in
        encoded s.Wal.records
        = List.filteri (fun j _ -> j >= idx) (encoded full.Wal.records)
        && s.Wal.valid_bytes = full.Wal.valid_bytes
      end)

(* group commit: a batch is one crash-atomic unit ------------------------- *)

let test_group_commit_batch_recovery () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.setup ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  (* an ordinary synchronous commit, then a committed batch: both are
     the acknowledged history *)
  ignore (ok (Scn.map_move_down st));
  Durable.sync d;
  Durable.begin_batch d;
  ignore (ok (Scn.normalize_invitations st));
  Durable.commit_batch d;
  let acked = List.map Symbol.name (Repo.decision_log st.Scn.repo) in
  let state_acked = canon (Cml.Kb.base (Repo.kb st.Scn.repo)) in
  (* a torn batch: its decision frames reach the disk, but the crash
     comes before the end-of-batch marker — exactly the window in which
     no client has been acked yet *)
  Durable.begin_batch d;
  ignore (ok (Scn.substitute_key st));
  Durable.sync d;
  let repo2, report = ok (Durable.recover ~dir ()) in
  check
    Alcotest.(list string)
    "acked decisions survive, torn batch rolled back" acked
    (List.map Symbol.name (Repo.decision_log repo2));
  check bool "torn batch counted as dangling" true
    (report.Durable.dangling_frames >= 1);
  check
    Alcotest.(list string)
    "state is exactly the acknowledged history" state_acked
    (canon (Cml.Kb.base (Repo.kb repo2)))

let test_group_commit_empty_and_errors () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let st = ok (Scn.setup ()) in
  let d = ok (Durable.attach ~dir st.Scn.repo) in
  (* an empty batch is legal and recovers to nothing extra *)
  Durable.begin_batch d;
  Durable.commit_batch d;
  (* unbalanced batch calls are programming errors, not silent no-ops *)
  Durable.begin_batch d;
  (match Durable.begin_batch d with
  | () -> Alcotest.fail "nested begin_batch accepted"
  | exception Invalid_argument _ -> ());
  Durable.commit_batch d;
  (* commit without an open batch is ignored (idempotent shutdown) *)
  Durable.commit_batch d;
  Durable.close d;
  let repo2, _ = ok (Durable.recover ~dir ()) in
  check int "no phantom decisions" 0 (List.length (Repo.decision_log repo2))

let suite =
  [
    ("crc32 vectors", `Quick, test_crc_vectors);
    ("crc32 incremental", `Quick, test_crc_incremental);
    ("frame roundtrip", `Quick, test_roundtrip);
    ("codec rejects garbage", `Quick, test_codec_rejects_garbage);
    ("torn tail truncated", `Quick, test_torn_tail);
    ("bit flip detected", `Quick, test_bit_flip_detected);
    ("bad header rejected", `Quick, test_bad_header);
    ("implausible length rejected", `Quick, test_implausible_length);
    ("fault sink drops bytes at crash point", `Quick, test_fault_sink_crash);
    ("resolve commit and abort", `Quick, test_resolve_commit_and_abort);
    ("resolve nested frames", `Quick, test_resolve_nested);
    ("resolve dangling outer frame", `Quick, test_resolve_nested_dangling_outer);
    ("replay idempotent", `Quick, test_replay_idempotent);
    QCheck_alcotest.to_alcotest prop_crash_recovery_torn;
    QCheck_alcotest.to_alcotest prop_crash_recovery_bitflip;
    ("scan_from at every frame boundary", `Quick, test_scan_from_every_boundary);
    ("scan_from headerless chunk", `Quick, test_scan_from_headerless_chunk);
    ("scan_from torn final frame", `Quick, test_scan_from_torn_final_frame);
    QCheck_alcotest.to_alcotest prop_scan_from_is_suffix;
    ("durable repository roundtrip", `Quick, test_durable_roundtrip);
    ("durable crash keeps committed prefix", `Quick, test_durable_crash_prefix);
    ("durable reopen continues", `Quick, test_durable_open_continues);
    ("aborted decision not resurrected", `Quick, test_durable_aborted_not_resurrected);
    ("checkpoint truncates log", `Quick, test_durable_checkpoint_truncates);
    ("retraction survives recovery", `Quick, test_durable_retraction_survives);
    ("recovery realigns prop id counter", `Quick, test_recover_realigns_prop_ids);
    ("recovery realigns decision counter", `Quick, test_recover_realigns_decision_counter);
    ("group-commit batch is crash-atomic", `Quick, test_group_commit_batch_recovery);
    ("group-commit batch edge cases", `Quick, test_group_commit_empty_and_errors);
  ]
