(* The GKBMS command line: run the paper's scenario, browse the resulting
   knowledge base, regenerate the figures, and export/import the
   proposition base.

   Examples:
     gkbms scenario                      # the full section-2.1 storyline
     gkbms scenario --until key          # stop before the conflict
     gkbms focus InvitationRel2          # fig 2-1-style focus view
     gkbms why InvitationRel2            # explanation facility
     gkbms deps --dot                    # dependency graph as Graphviz
     gkbms config                        # fig 3-4 configuration
     gkbms export kb.props               # persist the proposition base
     gkbms scenario --wal run.d          # journal into a write-ahead log
     gkbms recover run.d                 # crash recovery from the WAL *)

module Scn = Gkbms.Scenario
module Repo = Gkbms.Repository
module Sym = Kernel.Symbol
open Cmdliner

type stage = Setup | Mapped | Normalized | Keyed | Conflict | Resolved

let stage_conv =
  let parse = function
    | "setup" -> Ok Setup
    | "map" -> Ok Mapped
    | "normalize" -> Ok Normalized
    | "key" -> Ok Keyed
    | "conflict" -> Ok Conflict
    | "resolved" -> Ok Resolved
    | s -> Error (`Msg (Printf.sprintf "unknown stage %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | Setup -> "setup"
      | Mapped -> "map"
      | Normalized -> "normalize"
      | Keyed -> "key"
      | Conflict -> "conflict"
      | Resolved -> "resolved")
  in
  Arg.conv (parse, print)

let ( let* ) = Result.bind

let build_state ?wal until =
  let* st = Scn.setup () in
  let* durable =
    match wal with
    | None -> Ok None
    | Some dir ->
      Result.map Option.some (Gkbms.Durable.attach ~dir st.Scn.repo)
  in
  let steps =
    [
      (Mapped, fun () -> Result.map ignore (Scn.map_move_down st));
      (Normalized, fun () -> Result.map ignore (Scn.normalize_invitations st));
      (Keyed, fun () -> Result.map ignore (Scn.substitute_key st));
      (Conflict, fun () -> Result.map ignore (Scn.introduce_minutes st));
      (Resolved, fun () -> Result.map ignore (Scn.resolve_conflict st));
    ]
  in
  let rank = function
    | Setup -> 0 | Mapped -> 1 | Normalized -> 2 | Keyed -> 3
    | Conflict -> 4 | Resolved -> 5
  in
  let* () =
    List.fold_left
      (fun acc (stage, step) ->
        let* () = acc in
        if rank stage <= rank until then step () else Ok ())
      (Ok ()) steps
  in
  Ok (st, durable)

let handle = function
  | Ok () -> 0
  | Error e ->
    Format.eprintf "error: %s@." e;
    1

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let until_arg =
  Arg.(value & opt stage_conv Resolved & info [ "until" ] ~docv:"STAGE"
         ~doc:"Run the scenario up to STAGE (setup, map, normalize, key, conflict, resolved).")

let focus_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OBJECT")

(* scenario ------------------------------------------------------------- *)

let wal_arg =
  Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"DIR"
         ~doc:"Journal the run into a crash-safe write-ahead log under \
               $(docv) (a checkpoint snapshot plus a checksummed log of \
               every decision's deltas); rebuild with the recover command.")

(* Physical representation of every proposition base the command builds
   (scenario repositories, recovery, server state).  Routed through the
   process default so it reaches repositories created deep inside the
   scenario and recovery machinery; GKBMS_STORE sets the same default. *)
let store_arg =
  Arg.(value
       & opt (some (enum [ ("mem", `Mem); ("log", `Log); ("arena", `Arena) ]))
           None
       & info [ "store" ] ~docv:"BACKEND"
           ~doc:"Proposition store backend: $(b,mem) (hash indexes, the \
                 default), $(b,log) (append-only journal), or $(b,arena) \
                 (columnar GC-invisible arena).  Overrides GKBMS_STORE.")

let apply_store store = Option.iter Store.Base.set_default_backend store

let scenario_cmd =
  let run until wal store =
    apply_store store;
    handle
      (let* st, durable = build_state ?wal until in
       let repo = st.Scn.repo in
       Format.printf "decision log:@.";
       List.iter
         (fun (dec, dc) -> Format.printf "  %s : %s@." (Sym.name dec) dc)
         (Gkbms.Navigation.browse_process repo);
       Format.printf "@.version lattice:@.";
       Gkbms.Version.pp_version_lattice repo Format.std_formatter ();
       (match Cml.Consistency.check_all (Repo.kb repo) with
       | [] -> Format.printf "@.knowledge base is consistent.@."
       | vs ->
         List.iter
           (fun v -> Format.printf "%a@." Cml.Consistency.pp_violation v)
           vs);
       (match durable with
       | None -> ()
       | Some d ->
         Gkbms.Durable.sync d;
         Format.printf "@.journaled %d WAL records (%d bytes) under %s@."
           (Gkbms.Durable.wal_records d)
           (Gkbms.Durable.wal_bytes d)
           (Gkbms.Durable.dir d);
         Gkbms.Durable.close d);
       Ok ())
  in
  Cmd.v (Cmd.info "scenario" ~doc:"Run the section-2.1 storyline.")
    Term.(const run $ until_arg $ wal_arg $ store_arg)

(* recover ---------------------------------------------------------------- *)

let recover_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Durability directory written by scenario --wal.")
  in
  let canonical_arg =
    Arg.(value & opt (some string) None & info [ "canonical" ] ~docv:"FILE"
           ~doc:"Also write a canonical (sorted, insertion-order independent) \
                 repository snapshot to $(docv) — byte-comparable across \
                 replicas, the replication convergence oracle.")
  in
  let flight_log_arg =
    Arg.(value & flag & info [ "flight-log" ]
           ~doc:"Also print the decision flight log dumped by a crashed \
                 server (SIGUSR2, $(b,DIR/flight.json)) next to the WAL, \
                 when one exists.")
  in
  let run dir store canonical flight_log =
    apply_store store;
    handle
      (let* repo, report = Gkbms.Durable.recover ~dir () in
       Format.printf "%a@." Gkbms.Durable.pp_report report;
       (if flight_log then
          let path = Obs.Recorder.default_file dir in
          if Sys.file_exists path then begin
            Format.printf "@.flight log (%s):@." path;
            In_channel.with_open_text path In_channel.input_all
            |> String.split_on_char '\n'
            |> List.iter (fun l -> if l <> "" then Format.printf "  %s@." l)
          end
          else Format.printf "@.no flight log at %s@." path);
       (match canonical with
       | None -> ()
       | Some file ->
         write_file file (Gkbms.Persist.save_repository_canonical repo);
         Format.printf "@.canonical snapshot written to %s@." file);
       Format.printf "@.decision log:@.";
       List.iter
         (fun (dec, dc) -> Format.printf "  %s : %s@." (Sym.name dec) dc)
         (Gkbms.Navigation.browse_process repo);
       (match Cml.Consistency.check_all (Repo.kb repo) with
       | [] -> Format.printf "@.knowledge base is consistent.@."
       | vs ->
         List.iter
           (fun v -> Format.printf "%a@." Cml.Consistency.pp_violation v)
           vs);
       Ok ())
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Rebuild a repository from its durability directory: load the \
             checkpoint, replay the longest valid WAL prefix, discard \
             uncommitted decisions.")
    Term.(const run $ dir_arg $ store_arg $ canonical_arg $ flight_log_arg)

(* focus ------------------------------------------------------------------ *)

let focus_cmd =
  let run until name =
    handle
      (let* st, _ = build_state until in
       let view = Gkbms.Navigation.focus st.Scn.repo (Sym.intern name) in
       Format.printf "%a@." Gkbms.Navigation.pp_focus view;
       Ok ())
  in
  Cmd.v
    (Cmd.info "focus" ~doc:"Show the focus view (fig 2-1) of a design object.")
    Term.(const run $ until_arg $ focus_arg)

(* why ---------------------------------------------------------------------- *)

let why_cmd =
  let run until name =
    handle
      (let* st, _ = build_state until in
       Format.printf "%a@." Gkbms.Explain.pp_why
         (Gkbms.Explain.why st.Scn.repo (Sym.intern name));
       Ok ())
  in
  Cmd.v (Cmd.info "why" ~doc:"Explain why a design object exists.")
    Term.(const run $ until_arg $ focus_arg)

(* deps ---------------------------------------------------------------------- *)

let deps_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of ASCII.")
  in
  let root =
    Arg.(value & opt string "Papers" & info [ "root" ] ~docv:"OBJECT"
           ~doc:"Root of the ASCII rendering.")
  in
  let run until dot root =
    handle
      (let* st, _ = build_state until in
       if dot then print_string (Gkbms.Depgraph.to_dot st.Scn.repo)
       else Gkbms.Depgraph.pp st.Scn.repo Format.std_formatter (Sym.intern root);
       Ok ())
  in
  Cmd.v
    (Cmd.info "deps" ~doc:"Show the dependency graph (figs 2-2 .. 2-4).")
    Term.(const run $ until_arg $ dot $ root)

(* config ---------------------------------------------------------------------- *)

let config_cmd =
  let run until =
    handle
      (let* st, _ = build_state until in
       let repo = st.Scn.repo in
       let config = Gkbms.Version.configure repo ~level:Gkbms.Metamodel.dbpl_object in
       Format.printf "%a@." (Gkbms.Version.pp_configuration repo) config;
       let* m = Gkbms.Version.to_dbpl_module repo config ~name:"MeetingDB" in
       Format.printf "@.%a@." Langs.Dbpl.pp_module m;
       Ok ())
  in
  Cmd.v
    (Cmd.info "config"
       ~doc:"Configure the latest complete DBPL program version (fig 3-4).")
    Term.(const run $ until_arg)

(* source ---------------------------------------------------------------------- *)

let source_cmd =
  let run until name =
    handle
      (let* st, _ = build_state until in
       match Repo.source_text st.Scn.repo (Sym.intern name) with
       | Some src ->
         print_endline src;
         Ok ()
       | None -> Error (Printf.sprintf "no source recorded for %s" name))
  in
  Cmd.v (Cmd.info "source" ~doc:"Print the code frame of a design object.")
    Term.(const run $ until_arg $ focus_arg)

(* ask / derive ---------------------------------------------------------------- *)

let ask_cmd =
  let formula_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA"
           ~doc:"e.g. \"forall x/Paper in(?x, Document)\"")
  in
  let run until formula =
    handle
      (let* st, _ = build_state until in
       let* f = Langs.Assertion.parse_formula formula in
       let* answer = Cml.Kb.ask (Repo.kb st.Scn.repo) f in
       Format.printf "%b@." answer;
       Ok ())
  in
  Cmd.v
    (Cmd.info "ask" ~doc:"Evaluate a closed assertion against the KB.")
    Term.(const run $ until_arg $ formula_arg)

let derive_cmd =
  let atom_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATOM"
           ~doc:"e.g. \"in(InvitationRel, ?C)\"")
  in
  let run until atom =
    handle
      (let* st, _ = build_state until in
       let* goal = Langs.Assertion.parse_atom atom in
       let* substs = Cml.Kb.derive (Repo.kb st.Scn.repo) goal in
       if substs = [] then Format.printf "no.@."
       else
         List.iter
           (fun s -> Format.printf "%a@." Logic.Term.Subst.pp s)
           substs;
       Ok ())
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Query the deductive view (tabled top-down inference).")
    Term.(const run $ until_arg $ atom_arg)

let explain_cmd =
  let atom_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATOM"
           ~doc:"e.g. \"in(InvitationRel, ?C)\"")
  in
  let run until atom =
    handle
      (let* st, _ = build_state until in
       let* goal = Langs.Assertion.parse_atom atom in
       let* report = Cml.Kb.explain (Repo.kb st.Scn.repo) goal in
       Format.printf "%s@." (String.trim report);
       Ok ())
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the query planner's chosen plan for a goal (strategy, \
             join order, estimated vs. actual cardinalities) and evaluate \
             it.")
    Term.(const run $ until_arg $ atom_arg)

(* export / import ----------------------------------------------------------- *)

let export_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run until file =
    handle
      (let* st, _ = build_state until in
       let oc = open_out file in
       Store.Base.save (Cml.Kb.base (Repo.kb st.Scn.repo)) oc;
       close_out oc;
       Format.printf "wrote %d propositions to %s@."
         (Store.Base.cardinal (Cml.Kb.base (Repo.kb st.Scn.repo)))
         file;
       Ok ())
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Persist the proposition base to a file.")
    Term.(const run $ until_arg $ file)

let import_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    handle
      (let* repo = Gkbms.Persist.load_from_file file in
       Format.printf "loaded %d propositions, %d decisions@."
         (Store.Base.cardinal (Cml.Kb.base (Repo.kb repo)))
         (List.length (Repo.decision_log repo));
       List.iter
         (fun (dec, dc) -> Format.printf "  %s : %s@." (Sym.name dec) dc)
         (Gkbms.Navigation.browse_process repo);
       Ok ())
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Load a repository snapshot and summarize it.")
    Term.(const run $ file)

let snapshot_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run until file =
    handle
      (let* st, _ = build_state until in
       let* () = Gkbms.Persist.save_to_file st.Scn.repo file in
       Format.printf "repository snapshot written to %s@." file;
       Ok ())
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Persist the whole repository (KB + artifacts + history).")
    Term.(const run $ until_arg $ file)

let stats_cmd =
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Also print the process-wide metrics registry snapshot.")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the registry snapshot to $(docv) as JSON.")
  in
  let prom_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Write the registry snapshot to $(docv) in Prometheus text \
             exposition format.")
  in
  let run until metrics json prom =
    handle
      (let* st, _ = build_state until in
       let repo = st.Scn.repo in
       let base = Cml.Kb.base (Repo.kb repo) in
       Format.printf "propositions:    %d@." (Store.Base.cardinal base);
       Format.printf "design objects:  %d@."
         (List.length (Repo.all_design_objects repo));
       Format.printf "decisions:       %d@."
         (List.length (Repo.decision_log repo));
       Format.printf "unmapped:        %s@."
         (String.concat ", "
            (List.map Sym.name (Gkbms.Navigation.unmapped_objects repo)));
       let samples = Obs.Registry.snapshot Obs.Registry.default in
       if metrics then
         Format.printf "-- registry --@.%a@." Obs.Export.pp_samples samples;
       Option.iter
         (fun f ->
           write_file f (Obs.Export.json samples);
           Format.printf "registry JSON written to %s@." f)
         json;
       Option.iter
         (fun f ->
           write_file f (Obs.Export.prometheus samples);
           Format.printf "registry Prometheus text written to %s@." f)
         prom;
       Ok ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Knowledge base statistics; with $(b,--metrics)/$(b,--json)/\
          $(b,--prom), the live observability registry.")
    Term.(const run $ until_arg $ metrics_flag $ json_file $ prom_file)

let trace_cmd =
  let slow_ms =
    Arg.(
      value & opt float 0.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-op threshold in milliseconds; root spans at least this \
             long enter the slow-op log (0 captures everything).")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the captured span trees to $(docv) as JSON.")
  in
  let run until slow_ms json =
    handle
      (Obs.Trace.set_slow_threshold_s (slow_ms /. 1e3);
       Obs.Trace.set_enabled true;
       let* _ = build_state until in
       Obs.Trace.set_enabled false;
       let spans = Obs.Trace.slow () in
       Format.printf "%d slow operation(s) over %gms:@." (List.length spans)
         slow_ms;
       Format.printf "%a@." Obs.Export.pp_spans spans;
       Option.iter
         (fun f ->
           write_file f (Obs.Export.spans_json spans);
           Format.printf "span trees written to %s@." f)
         json;
       Ok ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the scenario with tracing on and print the slow-op log's span \
          trees.")
    Term.(const run $ until_arg $ slow_ms $ json_file)

let audit_cmd =
  let run until =
    handle
      (let* st, _ = build_state until in
       let repo = st.Scn.repo in
       Format.printf "== consistency ==@.";
       (match Cml.Consistency.check_all (Repo.kb repo) with
       | [] -> Format.printf "  ok@."
       | vs ->
         List.iter (fun v -> Format.printf "  %a@." Cml.Consistency.pp_violation v) vs);
       Format.printf "== methodology (%s) ==@."
         Gkbms.Methodology.daida_kernel.Gkbms.Methodology.methodology_name;
       (match
          Gkbms.Methodology.check_history repo Gkbms.Methodology.daida_kernel
        with
       | [] -> Format.printf "  conforms@."
       | vs ->
         List.iter
           (fun v -> Format.printf "  %a@." Gkbms.Methodology.pp_violation v)
           vs);
       Format.printf "== open obligations ==@.";
       List.iter
         (fun dec ->
           match Gkbms.Decision.open_obligations repo dec with
           | [] -> ()
           | obs ->
             Format.printf "  %s: %s@." (Sym.name dec) (String.concat ", " obs))
         (Repo.decision_log repo);
       Format.printf "== reason maintenance ==@.";
       (match Gkbms.Backtrack.unsupported_objects repo with
       | [] -> Format.printf "  all design objects supported@."
       | objs ->
         List.iter (fun o -> Format.printf "  unsupported: %s@." (Sym.name o)) objs);
       Format.printf "== decision contexts ==@.";
       let ctx = Gkbms.Context.build repo in
       (match Gkbms.Context.nogoods ctx with
       | [] -> Format.printf "  no conflicting decision sets@."
       | ngs ->
         List.iter
           (fun ng -> Format.printf "  nogood: {%s}@." (String.concat ", " ng))
           ngs);
       List.iter
         (fun alt -> Format.printf "  alternative: {%s}@." (String.concat ", " alt))
         (Gkbms.Context.alternatives ctx);
       Ok ())
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Consistency, methodology, obligations, support and contexts.")
    Term.(const run $ until_arg)

(* serve / client -------------------------------------------------------- *)

let socket_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET"
         ~doc:"Unix-domain socket path.")

let serve_cmd =
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ]
           ~doc:"Disable the version-keyed response cache.")
  in
  let idle =
    Arg.(value & opt (some float) None & info [ "idle-timeout" ] ~docv:"SECONDS"
           ~doc:"Disconnect sessions idle longer than $(docv) seconds.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Evaluate read commands on $(docv) OCaml domains (writes \
                 stay single-domain, in decision-log order).  Default 1.")
  in
  let role =
    Arg.(value
         & opt (enum [ ("single", `Single); ("leader", `Leader);
                       ("follower", `Follower) ]) `Single
         & info [ "role" ] ~docv:"ROLE"
             ~doc:"Replication role: $(b,single) (default, no replication), \
                   $(b,leader) (serve the repl command family so followers \
                   can stream the WAL; requires --wal, and recovers from it \
                   when the directory already holds a checkpoint), or \
                   $(b,follower) (bootstrap from --follow's leader, apply \
                   its committed decisions, serve reads only).")
  in
  let follow =
    Arg.(value & opt (some string) None & info [ "follow" ] ~docv:"SOCKET"
           ~doc:"Leader socket to replicate from (follower role).")
  in
  let group_commit =
    Arg.(value
         & opt ~vopt:(Some "") (some string) None
         & info [ "group-commit" ] ~docv:"K,T"
             ~doc:"Group commit: collect concurrently arriving write \
                   commands and journal them as one WAL batch with a \
                   single sync, then ack each client.  A batch flushes at \
                   $(b,K) writes or $(b,T) microseconds after the first, \
                   whichever comes first (bare flag: the 16,500 default).")
  in
  let event_loop =
    Arg.(value & flag & info [ "event-loop" ]
           ~doc:"Serve connections from a single select-based event loop \
                 over a small worker pool instead of a thread per \
                 connection (sessions may pipeline requests).")
  in
  let parse_group_commit = function
    | None -> Ok None
    | Some "" -> Ok (Some Server.Daemon.default_group_commit)
    | Some s -> (
      let default_t = snd Server.Daemon.default_group_commit in
      match String.split_on_char ',' s with
      | [ k ] -> (
        match int_of_string_opt k with
        | Some k when k > 0 -> Ok (Some (k, default_t))
        | _ -> Error ("invalid --group-commit " ^ s))
      | [ k; t ] -> (
        match (int_of_string_opt k, int_of_string_opt t) with
        | Some k, Some t when k > 0 && t >= 0 -> Ok (Some (k, t))
        | _ -> Error ("invalid --group-commit " ^ s))
      | _ -> Error ("invalid --group-commit " ^ s ^ " (expected K or K,T)"))
  in
  let serve_loop daemon ~socket ~banner =
    let stop_handler _ = Server.Daemon.stop daemon in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_handler);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_handler);
    Format.printf "%s@." banner;
    let* () = Server.Daemon.listen daemon ~path:socket in
    Server.Daemon.stop daemon;
    Format.printf "server stopped.@.";
    Ok ()
  in
  let run until wal socket no_cache idle domains store role follow group_commit
      event_loop =
    apply_store store;
    (* flight recorder dump-on-crash: SIGUSR2 snapshots the decision
       lifecycle ring next to the WAL (read back with
       recover --flight-log) *)
    Option.iter
      (fun dir ->
        Obs.Recorder.install_crash_dump ~path:(Obs.Recorder.default_file dir))
      wal;
    handle
      (let* group_commit = parse_group_commit group_commit in
      let config =
        { Server.Daemon.default_config with
          cache = not no_cache;
          idle_timeout = idle;
          domains = max 1 domains;
          group_commit;
          event_loop;
        }
      in
      let flags =
        Printf.sprintf "cache %s%s%s%s%s"
          (if no_cache then "off" else "on")
          (if domains > 1 then Printf.sprintf ", %d domains" domains else "")
          (match wal with None -> "" | Some dir -> ", wal " ^ dir)
          (match group_commit with
          | None -> ""
          | Some (k, t) -> Printf.sprintf ", group-commit %d,%dus" k t)
          (if event_loop then ", event loop" else "")
      in
      match role with
      | `Single ->
        let* st, _ = build_state until in
        let daemon = Server.Daemon.create ~config st.Scn.repo in
        let* () =
          match wal with
          | None -> Ok ()
          | Some dir -> Server.Daemon.attach_wal daemon ~dir
        in
        serve_loop daemon ~socket
          ~banner:
            (Printf.sprintf "gkbms server listening on %s (%s)" socket flags)
      | `Leader ->
        let* dir =
          match wal with
          | Some d -> Ok d
          | None -> Error "serve --role leader requires --wal DIR"
        in
        let* daemon =
          if Sys.file_exists (Gkbms.Durable.checkpoint_path dir) then (
            (* warm start: rebuild from the journal rather than replaying
               the scenario, so a restarted leader keeps its history (and
               its followers' generation cursors stay servable) *)
            let* durable, report = Gkbms.Durable.open_ ~dir () in
            Format.printf "recovered from %s:@.%a@." dir
              Gkbms.Durable.pp_report report;
            let daemon =
              Server.Daemon.create ~config (Gkbms.Durable.repo durable)
            in
            let* () = Server.Daemon.attach_durable daemon durable in
            Ok daemon)
          else
            let* st, _ = build_state until in
            let daemon = Server.Daemon.create ~config st.Scn.repo in
            let* () = Server.Daemon.attach_wal daemon ~dir in
            Ok daemon
        in
        let* _leader = Replication.Leader.attach daemon in
        serve_loop daemon ~socket
          ~banner:
            (Printf.sprintf "gkbms leader listening on %s (%s)" socket flags)
      | `Follower ->
        let* leader_sock =
          match follow with
          | Some a -> Ok a
          | None -> Error "serve --role follower requires --follow LEADER_SOCKET"
        in
        let* dir =
          match wal with
          | Some d -> Ok d
          | None ->
            Error "serve --role follower requires --wal DIR (its own journal)"
        in
        let connect () =
          Server.Client.connect_unix ~handshake:true leader_sock
        in
        (* the leader may still be starting up: retry the bootstrap *)
        let rec create_retry n =
          match
            Replication.Follower.create ~config ~leader:leader_sock ~connect
              ~dir ()
          with
          | Ok f -> Ok f
          | Error e when n > 0 ->
            Format.eprintf "waiting for leader: %s@." e;
            Thread.delay 0.5;
            create_retry (n - 1)
          | Error e -> Error e
        in
        let* follower = create_retry 20 in
        (* catch up before accepting clients, then keep pulling *)
        (match Replication.Follower.catch_up follower with
        | Ok () -> ()
        | Error e -> Format.eprintf "initial catch-up: %s@." e);
        Replication.Follower.start follower;
        let daemon = Replication.Follower.daemon follower in
        let stop_handler _ = Replication.Follower.stop follower in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop_handler);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_handler);
        Format.printf
          "gkbms follower listening on %s (leader %s, wal %s, applied %s)@."
          socket leader_sock dir
          (let e, v = Replication.Follower.applied follower in
           Replication.Wire.format_session_token ~epoch:e ~version:v);
        let* () = Server.Daemon.listen daemon ~path:socket in
        Replication.Follower.stop follower;
        Format.printf "follower stopped.@.";
        Ok ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the scenario repository to concurrent clients over a \
             Unix-domain socket (reads run concurrently, writes serialize \
             in decision-log order; with --wal every committed decision is \
             journaled before the response is sent).  With --role leader \
             the WAL is also streamed to replication followers; with \
             --role follower --follow SOCKET this process bootstraps from \
             the leader's checkpoint, replays its committed decisions, and \
             serves reads at the applied version (writes are refused with \
             a redirect).")
    Term.(const run $ until_arg $ wal_arg $ socket_arg $ no_cache $ idle
          $ domains $ store_arg $ role $ follow $ group_commit $ event_loop)

let client_cmd =
  let exec_args =
    Arg.(value & opt_all string [] & info [ "e"; "exec" ] ~docv:"CMD"
           ~doc:"Send $(docv) and print the response (repeatable).")
  in
  let script_arg =
    Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE"
           ~doc:"Send each non-empty line of $(docv) in order.")
  in
  let min_version_arg =
    Arg.(value & opt (some string) None & info [ "min-version" ] ~docv:"TOKEN"
           ~doc:"Read-your-writes: an EPOCH:VERSION session token (as \
                 returned by $(b,repl token) on the leader after a write); \
                 the client blocks until this server has applied at least \
                 that state before sending any command.")
  in
  let timing_arg =
    Arg.(value & flag & info [ "timing" ]
           ~doc:"Print each request's wall time and its trace id (requests \
                 are sent with a fresh trace context; look the trace up \
                 later with $(b,trace decision ID) or $(b,trace dump) on \
                 the server).")
  in
  let pipeline_arg =
    Arg.(value & opt int 1 & info [ "pipeline" ] ~docv:"K"
           ~doc:"Keep up to $(docv) requests in flight instead of one \
                 round trip at a time (batch mode only; against a \
                 group-commit server, back-to-back writes then share one \
                 WAL sync).  Responses print in submission order.  \
                 Default 1.")
  in
  let run socket cmds script min_version timing pipeline =
    (* --timing also records this process's client.send spans, dumped
       after the command loop so a cross-process trace can be stitched
       from all three dumps (client, leader, follower) *)
    if timing then Obs.Trace.set_enabled true;
    match Server.Client.connect_unix socket with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok client ->
      let barrier_failed =
        match min_version with
        | None -> false
        | Some token -> (
          match Replication.Wire.parse_session_token token with
          | Error e ->
            Format.eprintf "error: %s@." e;
            true
          | Ok (epoch, version) -> (
            match
              Server.Client.request client
                (Printf.sprintf "wait %d %d" epoch version)
            with
            | Ok _ -> false
            | Error e ->
              Format.eprintf "error: %s@." e;
              true))
      in
      if barrier_failed then begin
        Server.Client.close client;
        1
      end
      else
      let failed = ref false in
      let send line =
        let print_result = function
          | Ok payload -> if payload <> "" then Format.printf "%s@." payload
          | Error payload ->
            failed := true;
            Format.printf "%s@." payload
        in
        if timing then begin
          let t0 = Unix.gettimeofday () in
          let res, trace = Server.Client.request_traced client line in
          let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
          print_result res;
          Format.printf "# %.2f ms trace %s@." ms trace
        end
        else print_result (Server.Client.request client line)
      in
      let script_lines =
        match script with
        | None -> []
        | Some file ->
          In_channel.with_open_text file In_channel.input_lines
          |> List.filter (fun l -> String.trim l <> "")
      in
      let print_result = function
        | Ok payload -> if payload <> "" then Format.printf "%s@." payload
        | Error payload ->
          failed := true;
          Format.printf "%s@." payload
      in
      (match cmds @ script_lines with
      | (_ :: _ as lines) when pipeline > 1 ->
        List.iter print_result (Server.Client.pipeline ~window:pipeline client lines)
      | [] ->
        (* interactive *)
        let rec loop () =
          Format.printf "gkbms> %!";
          match In_channel.input_line stdin with
          | None -> ()
          | Some line when String.trim line = "" -> loop ()
          | Some line when Gkbms.Shell.is_quit line -> ()
          | Some line ->
            send line;
            loop ()
        in
        loop ()
      | lines -> List.iter send lines);
      Server.Client.close client;
      if timing then
        Format.printf "# client spans@.%s@."
          (Obs.Export.spans_json (Obs.Trace.recent ()));
      if !failed then 1 else 0
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Connect to a running gkbms server.  With -e or --script, send \
             the given commands and exit non-zero if any response is an \
             error; otherwise read commands interactively.  With \
             --min-version, first block until the server (typically a \
             replication follower) has applied the given session token.  \
             With --timing, print per-request wall time and trace id.  \
             With --pipeline K, keep up to K batch commands in flight.")
    Term.(const run $ socket_arg $ exec_args $ script_arg $ min_version_arg
          $ timing_arg $ pipeline_arg)

let repl_cmd =
  let run () =
    match Gkbms.Shell.create () with
    | Error e ->
      Format.eprintf "error: %s@." e;
      1
    | Ok shell ->
      Format.printf
        "GKBMS dialog manager — the meeting design is loaded; try 'help'.@.";
      let rec loop () =
        Format.printf "gkbms> %!";
        match In_channel.input_line stdin with
        | None -> 0
        | Some line when Gkbms.Shell.is_quit line -> 0
        | Some line ->
          let output = Gkbms.Shell.eval shell line in
          if output <> "" then Format.printf "%s@." output;
          loop ()
      in
      loop ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive dialog manager (§3.3.1).")
    Term.(const run $ const ())

let slo_cmd =
  let spec_arg =
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"SPEC"
           ~doc:"Parse and install an objective table (e.g. \
                 $(b,run=50ms,derive=10ms,default=100ms); durations take \
                 ms/us/s suffixes, bare numbers are milliseconds) instead \
                 of the GKBMS_SLO environment variable, then print it.")
  in
  let run spec =
    match Option.map Obs.Slo.configure spec with
    | Some (Error e) ->
      Format.eprintf "error: %s@." e;
      1
    | Some (Ok ()) | None ->
      Format.printf "%s@." (Obs.Slo.render ());
      0
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:"Show the per-command latency objectives (GKBMS_SLO) and this \
             process's request/breach/burn tallies.  On a live server, use \
             $(b,client -e slo) for the server's own tallies.")
    Term.(const run $ spec_arg)

let main =
  Cmd.group
    (Cmd.info "gkbms" ~version:"1.0.0"
       ~doc:
         "A knowledge base management system for information system \
          evolution (Jarke & Rose, SIGMOD 1988).")
    [ scenario_cmd; focus_cmd; why_cmd; deps_cmd; config_cmd; source_cmd;
      ask_cmd; derive_cmd; explain_cmd; export_cmd; import_cmd; snapshot_cmd; recover_cmd;
      audit_cmd; repl_cmd; stats_cmd; trace_cmd; slo_cmd; serve_cmd;
      client_cmd ]

let () = exit (Cmd.eval' main)
